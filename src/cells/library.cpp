#include "pgmcml/cells/library.hpp"

#include <stdexcept>

#include "pgmcml/mcml/area.hpp"
#include "pgmcml/mcml/characterize.hpp"
#include "pgmcml/util/units.hpp"

namespace pgmcml::cells {

using mcml::AreaModel;
using mcml::CellInfo;
using mcml::CellKind;
using mcml::cell_info;

std::string to_string(LogicStyle style) {
  switch (style) {
    case LogicStyle::kCmos: return "CMOS";
    case LogicStyle::kMcml: return "MCML";
    case LogicStyle::kPgMcml: return "PG-MCML";
  }
  return "?";
}

namespace {

/// Transistor counts of the equivalent static CMOS cells (standard
/// complementary / transmission-gate implementations).
int cmos_transistors(CellKind kind) {
  switch (kind) {
    case CellKind::kBuf: return 4;
    case CellKind::kDiff2Single: return 4;
    case CellKind::kAnd2: return 6;
    case CellKind::kAnd3: return 8;
    case CellKind::kAnd4: return 10;
    case CellKind::kMux2: return 10;
    case CellKind::kMux4: return 22;
    case CellKind::kMaj3: return 12;
    case CellKind::kXor2: return 10;
    case CellKind::kXor3: return 16;
    case CellKind::kXor4: return 22;
    case CellKind::kDLatch: return 14;
    case CellKind::kDff: return 24;
    case CellKind::kDffR: return 28;
    case CellKind::kEDff: return 30;
    case CellKind::kFullAdder: return 28;
  }
  return 0;
}

}  // namespace

CellLibrary::CellLibrary(LogicStyle style, std::string name, double vdd)
    : style_(style), name_(std::move(name)), vdd_(vdd) {}

const StdCell& CellLibrary::cell(CellKind kind) const {
  for (const StdCell& c : cells_) {
    if (c.kind == kind) return c;
  }
  throw std::invalid_argument("CellLibrary::cell: unknown kind");
}

double CellLibrary::inverter_area() const {
  // The CMOS inverter the mapper inserts for non-free inversions.
  return 1.3e-12;  // 1.3 um^2
}

CellLibrary CellLibrary::cmos90() {
  CellLibrary lib(LogicStyle::kCmos, "cmos90", 1.2);
  AreaModel area;
  for (CellKind kind : mcml::all_cells()) {
    const CellInfo& info = cell_info(kind);
    StdCell c;
    c.kind = kind;
    c.name = info.name + "X1";
    c.transistors = cmos_transistors(kind);
    // No CMOS counterpart published for 3 cells; assume the 1.6x mean ratio.
    const auto a = area.cmos_area(kind);
    c.area = a.value_or(area.pg_area(kind) / 1.6);
    // The paper observes MCML and CMOS cell speeds are similar; Table 3's
    // S-box delays put CMOS ~10 % faster than MCML at the block level.
    c.delay = info.paper_delay * 0.9;
    c.input_cap = 1.8e-15;
    // Effective switching energy C_eff * Vdd^2, C_eff growing with cell size.
    const double ceff = 1.0e-15 + 0.25e-15 * c.transistors;
    c.switch_energy = ceff * lib.vdd_ * lib.vdd_;
    // Commercial 90 nm low-Vt leakage, ~50 nW per average cell: this is what
    // makes the idle CMOS S-box ISE of Table 3 burn ~200 uW.
    c.leakage_power = 10e-9 + 2.5e-9 * c.transistors;
    c.static_current = 0.0;
    c.sleep_current = 0.0;
    c.stages = 0;
    lib.cells_.push_back(c);
  }
  return lib;
}

CellLibrary CellLibrary::mcml90() {
  CellLibrary lib(LogicStyle::kMcml, "mcml90", 1.2);
  AreaModel area;
  for (CellKind kind : mcml::all_cells()) {
    const CellInfo& info = cell_info(kind);
    StdCell c;
    c.kind = kind;
    c.name = info.name + "X1";
    c.transistors = mcml::transistor_count(kind, false);
    c.area = area.mcml_area(kind);
    c.delay = info.paper_delay;  // library datasheet values (Table 2)
    c.input_cap = 1.2e-15;       // differential pair gate cap per phase
    c.switch_energy = 0.0;       // switching just steers the tail current
    c.static_current = info.num_stages * 50e-6;
    c.sleep_current = c.static_current;  // no sleep support
    c.leakage_power = 0.0;
    c.stages = info.num_stages;
    lib.cells_.push_back(c);
  }
  return lib;
}

CellLibrary CellLibrary::pgmcml90() {
  CellLibrary lib(LogicStyle::kPgMcml, "pgmcml90", 1.2);
  AreaModel area;
  for (CellKind kind : mcml::all_cells()) {
    const CellInfo& info = cell_info(kind);
    StdCell c;
    c.kind = kind;
    c.name = info.name + "X1";
    c.transistors = mcml::transistor_count(kind, true);
    c.area = area.pg_area(kind);
    // Table 3: the sleep device costs ~3 % block-level delay.
    c.delay = info.paper_delay * 1.03;
    c.input_cap = 1.2e-15;
    c.switch_energy = 0.0;
    c.static_current = info.num_stages * 50e-6;
    // Measured transistor-level gated-off leakage: ~0.85 nA per stage.
    c.sleep_current = info.num_stages * 0.85e-9;
    c.leakage_power = 0.0;
    c.stages = info.num_stages;
    lib.cells_.push_back(c);
  }
  return lib;
}

CellLibrary CellLibrary::characterized(LogicStyle style,
                                       const mcml::McmlDesign& design) {
  if (style == LogicStyle::kCmos) {
    throw std::invalid_argument(
        "characterized(): only MCML styles run through the SPICE engine");
  }
  mcml::McmlDesign d = design;
  d.gating = style == LogicStyle::kPgMcml
                 ? mcml::GatingTopology::kSeriesSleep
                 : mcml::GatingTopology::kNone;
  CellLibrary lib(style,
                  style == LogicStyle::kPgMcml ? "pgmcml90.char" : "mcml90.char",
                  d.tech.vdd());
  AreaModel area;
  for (CellKind kind : mcml::all_cells()) {
    const CellInfo& info = cell_info(kind);
    const mcml::CellCharacterization ch = mcml::characterize_cell(kind, d, 1);
    if (!ch.ok) {
      throw std::runtime_error("characterization failed for " + info.name +
                               ": " + ch.error);
    }
    StdCell c;
    c.kind = kind;
    c.name = info.name + "X1";
    c.transistors = ch.transistors;
    c.area = style == LogicStyle::kPgMcml ? area.pg_area(kind)
                                          : area.mcml_area(kind);
    c.delay = ch.delay;
    c.input_cap = d.tech.nmos(d.network_vt, d.eff_w_pair()).cgs();
    c.switch_energy = 0.0;
    c.static_current = ch.static_current;
    c.sleep_current = ch.sleep_current;
    c.leakage_power = 0.0;
    c.stages = info.num_stages;
    lib.cells_.push_back(c);
  }
  return lib;
}

}  // namespace pgmcml::cells
