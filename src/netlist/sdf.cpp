#include "pgmcml/netlist/sdf.hpp"

#include <sstream>

namespace pgmcml::netlist {

std::string to_sdf(const Design& design, const cells::CellLibrary& library,
                   const PlacementResult* placement,
                   double wire_delay_per_length) {
  std::ostringstream os;
  os << "(DELAYFILE\n";
  os << "  (SDFVERSION \"3.0\")\n";
  os << "  (DESIGN \"" << design.name() << "\")\n";
  os << "  (VENDOR \"pgmcml\")\n";
  os << "  (TIMESCALE 1ps)\n";
  for (std::size_t i = 0; i < design.num_instances(); ++i) {
    const Instance& inst = design.instance(static_cast<InstId>(i));
    const cells::StdCell& cell = library.cell(inst.kind);
    const double d_ps = cell.delay * 1e12;
    os << "  (CELL (CELLTYPE \"" << cell.name << "\")\n";
    os << "    (INSTANCE " << inst.name << ")\n";
    os << "    (DELAY (ABSOLUTE\n";
    const char* out_pin =
        inst.kind == mcml::CellKind::kFullAdder ? "S" : "Q";
    os << "      (IOPATH * " << out_pin << " (" << d_ps << ":" << d_ps << ":"
       << d_ps << ") (" << d_ps << ":" << d_ps << ":" << d_ps << "))\n";
    if (inst.outputs.size() > 1) {
      os << "      (IOPATH * CO (" << d_ps << ":" << d_ps << ":" << d_ps
         << ") (" << d_ps << ":" << d_ps << ":" << d_ps << "))\n";
    }
    if (placement != nullptr) {
      for (NetId out : inst.outputs) {
        const double w_ps =
            placement->net_length[out] * wire_delay_per_length * 1e12;
        if (w_ps <= 0.0) continue;
        os << "      (INTERCONNECT " << inst.name << "/" << out_pin << " * ("
           << w_ps << ":" << w_ps << ":" << w_ps << "))\n";
      }
    }
    os << "    ))\n";
    os << "  )\n";
  }
  os << ")\n";
  return os.str();
}

}  // namespace pgmcml::netlist
