#include "pgmcml/netlist/design.hpp"

#include <algorithm>
#include <stdexcept>

#include "pgmcml/cells/library.hpp"

namespace pgmcml::netlist {

Design::Design(std::string name) : name_(std::move(name)) {}

NetId Design::add_net(const std::string& hint) {
  const NetId id = static_cast<NetId>(net_names_.size());
  net_names_.push_back(hint + "#" + std::to_string(id));
  return id;
}

InstId Design::add_instance(Instance inst) {
  const mcml::CellInfo& info = mcml::cell_info(inst.kind);
  if (static_cast<int>(inst.inputs.size()) != info.num_inputs) {
    throw std::invalid_argument("Design::add_instance(" + inst.name +
                                "): wrong input count");
  }
  if ((info.num_clocks > 0) != (inst.clk != kNoNet)) {
    throw std::invalid_argument("Design::add_instance(" + inst.name +
                                "): clock mismatch");
  }
  const std::size_t expected_outputs =
      inst.kind == mcml::CellKind::kFullAdder ? 2 : 1;
  if (inst.outputs.size() != expected_outputs) {
    throw std::invalid_argument("Design::add_instance(" + inst.name +
                                "): wrong output count");
  }
  const InstId id = static_cast<InstId>(instances_.size());
  instances_.push_back(std::move(inst));
  return id;
}

void Design::mark_input(NetId n, const std::string& name) {
  inputs_.push_back(n);
  input_names_.push_back(name);
}

void Design::mark_output(NetId n, const std::string& name, bool inverted) {
  outputs_.push_back(n);
  output_names_.push_back(name);
  output_inverted_.push_back(inverted);
}

const std::string& Design::port_name(std::size_t i, bool is_input) const {
  return is_input ? input_names_.at(i) : output_names_.at(i);
}

std::vector<InstId> Design::driver_map() const {
  std::vector<InstId> driver(num_nets(), -1);
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    for (NetId out : instances_[i].outputs) {
      if (driver[out] != -1) {
        throw std::logic_error("net " + net_name(out) + " has two drivers");
      }
      driver[out] = static_cast<InstId>(i);
    }
  }
  return driver;
}

std::vector<InstId> Design::topological_order() const {
  const std::vector<InstId> driver = driver_map();
  std::vector<int> state(instances_.size(), 0);  // 0 new, 1 visiting, 2 done
  std::vector<InstId> order;
  order.reserve(instances_.size());

  // Iterative DFS over combinational dependencies; sequential cells do not
  // propagate a dependency through their clocked path (they are cut points).
  std::vector<InstId> stack;
  for (std::size_t root = 0; root < instances_.size(); ++root) {
    if (state[root] != 0) continue;
    stack.push_back(static_cast<InstId>(root));
    while (!stack.empty()) {
      const InstId i = stack.back();
      if (state[i] == 2) {
        stack.pop_back();
        continue;
      }
      if (state[i] == 1) {
        state[i] = 2;
        order.push_back(i);
        stack.pop_back();
        continue;
      }
      state[i] = 1;
      const Instance& inst = instances_[i];
      if (!mcml::cell_info(inst.kind).sequential) {
        for (NetId in : inst.inputs) {
          const InstId d = driver[in];
          if (d < 0) continue;
          if (state[d] == 1) {
            throw std::logic_error("combinational cycle through " +
                                   instances_[d].name);
          }
          if (state[d] == 0) stack.push_back(d);
        }
      }
    }
  }
  return order;
}

Design::Stats Design::stats(const cells::CellLibrary& lib) const {
  Stats s;
  s.cells = instances_.size();
  for (const Instance& inst : instances_) {
    // Explicit inverters (BUF with folded inversion) are the cells the CMOS
    // mapper had to insert for complemented inputs; a folded inversion on a
    // logic gate's own output is free in every style (NAND-style output
    // stage in CMOS, wire swap in differential logic).
    const bool is_inverter =
        inst.kind == mcml::CellKind::kBuf && inst.inverted_output;
    if (is_inverter) {
      ++s.inverters;
      s.area += lib.free_inversion() ? lib.cell(inst.kind).area
                                     : lib.inverter_area();
    } else {
      s.area += lib.cell(inst.kind).area;
    }
  }

  // Longest combinational path by cell delay (arrival-time propagation).
  const std::vector<InstId> order = topological_order();
  const std::vector<InstId> driver = driver_map();
  std::vector<double> arrival(num_nets(), 0.0);
  for (InstId i : order) {
    const Instance& inst = instances_[i];
    double in_arrival = 0.0;
    if (!mcml::cell_info(inst.kind).sequential) {
      for (NetId in : inst.inputs) {
        in_arrival = std::max(in_arrival, arrival[in]);
      }
    }
    const double out_time = in_arrival + lib.cell(inst.kind).delay;
    for (NetId out : inst.outputs) {
      arrival[out] = out_time;
      s.critical_path = std::max(s.critical_path, out_time);
    }
  }
  return s;
}

std::vector<Design::LintIssue> Design::lint() const {
  std::vector<LintIssue> issues;
  const std::vector<InstId> driver = driver_map();
  std::vector<bool> is_input(num_nets(), false);
  for (NetId n : inputs_) is_input[n] = true;
  std::vector<bool> is_read(num_nets(), false);
  for (NetId n : outputs_) is_read[n] = true;

  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const Instance& inst = instances_[i];
    auto check_in = [&](NetId n) {
      if (n == kNoNet) return;
      is_read[n] = true;
      if (driver[n] < 0 && !is_input[n]) {
        issues.push_back(LintIssue{LintIssue::Kind::kUndrivenInput, n,
                                   static_cast<InstId>(i)});
      }
    };
    for (NetId n : inst.inputs) check_in(n);
    check_in(inst.clk);
    check_in(inst.ctrl);
  }
  for (NetId n = 0; n < static_cast<NetId>(num_nets()); ++n) {
    if (driver[n] >= 0 && !is_read[n]) {
      issues.push_back(LintIssue{LintIssue::Kind::kDanglingNet, n, driver[n]});
    }
  }
  for (NetId n : outputs_) {
    if (driver[n] < 0 && !is_input[n]) {
      issues.push_back(LintIssue{LintIssue::Kind::kUndrivenOutput, n, -1});
    }
  }
  return issues;
}

}  // namespace pgmcml::netlist
