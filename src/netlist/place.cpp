#include "pgmcml/netlist/place.hpp"

#include <algorithm>
#include <cmath>

namespace pgmcml::netlist {

PlacementResult place_and_route(const Design& design,
                                const cells::CellLibrary& library,
                                const PlacementOptions& options) {
  PlacementResult result;
  const std::size_t n = design.num_instances();
  result.sites.resize(n);
  result.net_length.assign(design.num_nets(), 0.0);
  if (n == 0) return result;

  // --- die sizing -------------------------------------------------------------
  for (std::size_t i = 0; i < n; ++i) {
    result.cell_area +=
        library.cell(design.instance(static_cast<InstId>(i)).kind).area;
  }
  result.die_area = result.cell_area / options.target_utilization;
  // Near-square die out of full rows.
  const double ideal_side = std::sqrt(result.die_area);
  result.rows = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(ideal_side / options.row_height)));
  result.die_height = static_cast<double>(result.rows) * options.row_height;
  result.die_width = result.die_area / result.die_height;

  // --- placement: topological order snaked across rows ------------------------
  // Ordering by logic depth keeps connected cells nearby -- the first-order
  // behaviour of a real placer on datapath-like netlists.
  const std::vector<InstId> order = design.topological_order();
  std::size_t row = 0;
  double x = 0.0;
  bool left_to_right = true;
  for (InstId i : order) {
    const double width =
        library.cell(design.instance(i).kind).area / options.row_height;
    if (x + width > result.die_width && row + 1 < result.rows) {
      ++row;
      x = 0.0;
      left_to_right = !left_to_right;
    }
    CellSite site;
    site.instance = i;
    site.row = static_cast<int>(row);
    site.x = left_to_right ? x : std::max(0.0, result.die_width - x - width);
    site.width = width;
    result.sites[static_cast<std::size_t>(i)] = site;
    x += width;
  }
  result.utilization = result.cell_area / result.die_area;

  // --- routing estimate: HPWL per net -----------------------------------------
  // Pin position ~ cell center; primary ports sit on the left die edge.
  auto cell_pos = [&](InstId i) {
    const CellSite& s = result.sites[static_cast<std::size_t>(i)];
    return std::pair<double, double>(
        s.x + 0.5 * s.width,
        (static_cast<double>(s.row) + 0.5) * options.row_height);
  };

  const std::vector<InstId> driver = design.driver_map();
  std::vector<double> lo_x(design.num_nets(), 1e9);
  std::vector<double> hi_x(design.num_nets(), -1e9);
  std::vector<double> lo_y(design.num_nets(), 1e9);
  std::vector<double> hi_y(design.num_nets(), -1e9);
  auto touch = [&](NetId net, double px, double py) {
    lo_x[net] = std::min(lo_x[net], px);
    hi_x[net] = std::max(hi_x[net], px);
    lo_y[net] = std::min(lo_y[net], py);
    hi_y[net] = std::max(hi_y[net], py);
  };
  for (std::size_t i = 0; i < n; ++i) {
    const Instance& inst = design.instance(static_cast<InstId>(i));
    const auto [px, py] = cell_pos(static_cast<InstId>(i));
    for (NetId in : inst.inputs) touch(in, px, py);
    if (inst.clk != kNoNet) touch(inst.clk, px, py);
    if (inst.ctrl != kNoNet) touch(inst.ctrl, px, py);
    for (NetId out : inst.outputs) touch(out, px, py);
  }
  for (NetId port : design.inputs()) {
    touch(port, 0.0, 0.5 * result.die_height);
  }
  for (NetId port : design.outputs()) {
    touch(port, result.die_width, 0.5 * result.die_height);
  }

  const double fat = options.fat_wires ? 2.0 : 1.0;
  for (NetId net = 0; net < static_cast<NetId>(design.num_nets()); ++net) {
    if (hi_x[net] < lo_x[net]) continue;  // untouched net
    const double hpwl = (hi_x[net] - lo_x[net]) + (hi_y[net] - lo_y[net]);
    result.net_length[net] = hpwl;
    result.total_wire_length += hpwl * fat;
    result.total_wire_cap += hpwl * fat * options.wire_cap_per_length;
  }

  // --- wire-aware timing --------------------------------------------------------
  std::vector<double> arrival(design.num_nets(), 0.0);
  for (InstId i : order) {
    const Instance& inst = design.instance(i);
    double in_arrival = 0.0;
    if (!mcml::cell_info(inst.kind).sequential) {
      for (NetId in : inst.inputs) {
        in_arrival = std::max(in_arrival, arrival[in]);
      }
    }
    const double cell_delay = library.cell(inst.kind).delay;
    for (NetId out : inst.outputs) {
      const double wire_delay =
          result.net_length[out] * options.wire_delay_per_length;
      arrival[out] = in_arrival + cell_delay + wire_delay;
      result.routed_critical_path =
          std::max(result.routed_critical_path, arrival[out]);
    }
  }
  return result;
}

}  // namespace pgmcml::netlist
