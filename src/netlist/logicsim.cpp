#include "pgmcml/netlist/logicsim.hpp"

#include <stdexcept>

namespace pgmcml::netlist {

using mcml::CellKind;

std::vector<bool> eval_cell(CellKind kind, const std::vector<bool>& in,
                            bool clk, bool ctrl, bool state) {
  switch (kind) {
    case CellKind::kBuf:
    case CellKind::kDiff2Single:
      return {in[0]};
    case CellKind::kAnd2:
      return {in[0] && in[1]};
    case CellKind::kAnd3:
      return {in[0] && in[1] && in[2]};
    case CellKind::kAnd4:
      return {in[0] && in[1] && in[2] && in[3]};
    case CellKind::kMux2:
      return {in[0] ? in[2] : in[1]};  // {sel, in0, in1}
    case CellKind::kMux4: {
      const int idx = (in[1] ? 2 : 0) + (in[0] ? 1 : 0);
      return {in[2 + idx]};  // {sel0, sel1, in0..in3}
    }
    case CellKind::kMaj3:
      return {(in[0] && in[1]) || (in[1] && in[2]) || (in[0] && in[2])};
    case CellKind::kXor2:
      return {in[0] != in[1]};
    case CellKind::kXor3:
      return {(in[0] != in[1]) != in[2]};
    case CellKind::kXor4:
      return {((in[0] != in[1]) != in[2]) != in[3]};
    case CellKind::kDLatch:
      return {clk ? in[0] : state};
    case CellKind::kDff:
    case CellKind::kDffR:
    case CellKind::kEDff:
      return {state};  // edge behaviour handled by the simulator
    case CellKind::kFullAdder: {
      const bool sum = (in[0] != in[1]) != in[2];
      const bool cout =
          (in[0] && in[1]) || (in[1] && in[2]) || (in[0] && in[2]);
      return {sum, cout};
    }
  }
  (void)ctrl;
  throw std::logic_error("eval_cell: unknown kind");
}

LogicSim::LogicSim(const Design& design, const cells::CellLibrary* library)
    : design_(design),
      library_(library),
      values_(design.num_nets(), false),
      prev_clk_(design.num_instances(), false),
      state_(design.num_instances(), false),
      fanout_(design.num_nets()),
      toggles_(design.num_instances(), 0) {
  for (std::size_t i = 0; i < design.num_instances(); ++i) {
    const Instance& inst = design.instance(static_cast<InstId>(i));
    for (NetId in : inst.inputs) fanout_[in].push_back(static_cast<InstId>(i));
    if (inst.clk != kNoNet) fanout_[inst.clk].push_back(static_cast<InstId>(i));
    if (inst.ctrl != kNoNet) {
      fanout_[inst.ctrl].push_back(static_cast<InstId>(i));
    }
  }

  // Establish the t = 0 steady state (all primary inputs low, all flops
  // cleared) by levelized evaluation; without this, constant paths through
  // inverting pins would read wrong until their first event.
  for (InstId i : design.topological_order()) {
    const Instance& inst = design.instance(i);
    std::vector<bool> in;
    for (std::size_t k = 0; k < inst.inputs.size(); ++k) {
      bool v = values_[inst.inputs[k]];
      if (k < inst.input_inverted.size() && inst.input_inverted[k]) v = !v;
      in.push_back(v);
    }
    const std::vector<bool> out =
        eval_cell(inst.kind, in, false, false, state_[i]);
    for (std::size_t k = 0; k < out.size(); ++k) {
      values_[inst.outputs[k]] = out[k] != inst.inverted_output;
    }
  }
}

double LogicSim::delay_of(const Instance& inst) const {
  if (library_ == nullptr) return 10e-12;
  return library_->cell(inst.kind).delay;
}

void LogicSim::set_input(NetId net, bool value, double time) {
  if (time < now_) {
    throw std::invalid_argument("LogicSim::set_input: time in the past");
  }
  schedule(time, net, value, -1);
}

void LogicSim::schedule(double time, NetId net, bool value, InstId driver) {
  queue_.push(Pending{time, seq_counter_++, net, value, driver});
}

void LogicSim::run_until(double time) {
  while (!queue_.empty() && queue_.top().time <= time) {
    const Pending ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    fire(ev);
  }
  now_ = std::max(now_, time);
}

void LogicSim::fire(const Pending& ev) {
  if (values_[ev.net] == ev.value) return;  // swallowed glitch / no change
  values_[ev.net] = ev.value;
  events_.push_back(SimEvent{ev.time, ev.net, ev.value, ev.driver});
  if (ev.driver >= 0) ++toggles_[ev.driver];
  for (InstId reader : fanout_[ev.net]) {
    evaluate_instance(reader, ev.time);
  }
}

void LogicSim::evaluate_instance(InstId i, double time) {
  const Instance& inst = design_.instance(i);
  const mcml::CellInfo& info = mcml::cell_info(inst.kind);

  std::vector<bool> in;
  in.reserve(inst.inputs.size());
  for (std::size_t k = 0; k < inst.inputs.size(); ++k) {
    bool v = values_[inst.inputs[k]];
    if (k < inst.input_inverted.size() && inst.input_inverted[k]) v = !v;
    in.push_back(v);
  }
  const bool clk = inst.clk != kNoNet && values_[inst.clk];
  const bool ctrl = inst.ctrl != kNoNet && values_[inst.ctrl];

  // Sequential behaviour: update state on clock edges / transparency.
  if (info.sequential) {
    if (inst.kind == CellKind::kDLatch) {
      if (clk) state_[i] = in[0];
    } else {
      const bool rising = clk && !prev_clk_[i];
      if (rising) {
        switch (inst.kind) {
          case CellKind::kDff:
            state_[i] = in[0];
            break;
          case CellKind::kDffR:
            state_[i] = in[0] && !ctrl;  // synchronous reset
            break;
          case CellKind::kEDff:
            if (ctrl) state_[i] = in[0];  // enable
            break;
          default:
            break;
        }
      }
    }
    prev_clk_[i] = clk;
  }

  const std::vector<bool> out =
      eval_cell(inst.kind, in, clk, ctrl, state_[i]);
  const double t_out = time + delay_of(inst);
  for (std::size_t k = 0; k < out.size(); ++k) {
    const bool v = out[k] != inst.inverted_output;
    // Only schedule when the target differs from the current value or a
    // change is already in flight; scheduling unconditionally is correct
    // because fire() swallows no-ops.
    schedule(t_out, inst.outputs[k], v, i);
  }
}

void LogicSim::apply_and_settle(
    const std::vector<std::pair<NetId, bool>>& assign) {
  for (const auto& [net, value] : assign) {
    set_input(net, value, now_);
  }
  // Settle: keep draining until the queue is empty (bounded by gate depth).
  while (!queue_.empty()) {
    const double t = queue_.top().time;
    run_until(t);
  }
}

std::size_t LogicSim::total_toggles() const {
  std::size_t sum = 0;
  for (std::size_t t : toggles_) sum += t;
  return sum;
}

}  // namespace pgmcml::netlist
