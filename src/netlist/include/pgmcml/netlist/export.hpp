// Netlist interchange: structural Verilog out, VCD waveform dump.
//
// These are the hand-off artifacts of the paper's flow -- the synthesized
// netlist goes to P&R as structural Verilog, and the gate-level simulation's
// switching activity goes to the power tool as a VCD.  Both formats are kept
// conventional enough for real tools to parse.
#pragma once

#include <string>
#include <vector>

#include "pgmcml/cells/library.hpp"
#include "pgmcml/netlist/design.hpp"
#include "pgmcml/netlist/logicsim.hpp"

namespace pgmcml::netlist {

/// Renders the design as structural Verilog over the library's cell names.
/// Folded inversions / differential phase selections appear as `_N`-suffixed
/// cell variants (free in MCML, real inverters in CMOS -- a comment marks
/// which).
std::string to_verilog(const Design& design, const cells::CellLibrary& library);

/// Renders a recorded event stream as a VCD dump.  `timescale` is the VCD
/// unit in seconds (default 1 ps).  Nets are initialized to 0 at time 0, as
/// in the simulator.
std::string to_vcd(const Design& design, const std::vector<SimEvent>& events,
                   double timescale = 1e-12);

}  // namespace pgmcml::netlist
