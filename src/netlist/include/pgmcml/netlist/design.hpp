// Gate-level structural netlist.
//
// A Design is a directed graph of cell instances over single-bit nets (the
// differential/fat-wire routing of the physical MCML implementation is
// invisible at this level -- each logical net stands for the differential
// pair).  Cell functions are identified by mcml::CellKind so the same mapped
// netlist can be costed against any of the three libraries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pgmcml/mcml/cells.hpp"

namespace pgmcml::cells {
class CellLibrary;
}

namespace pgmcml::netlist {

using NetId = std::int32_t;
using InstId = std::int32_t;

inline constexpr NetId kNoNet = -1;

struct Instance {
  std::string name;
  mcml::CellKind kind{};
  /// Data inputs, in the cell's canonical order (see mcml::cell_info).
  std::vector<NetId> inputs;
  NetId clk = kNoNet;
  NetId ctrl = kNoNet;  ///< reset / enable
  /// Outputs: one net for most cells, {sum, cout} for the full adder.
  std::vector<NetId> outputs;
  /// For CMOS mapping: true when this instance's single output is the
  /// complement of the cell function (a trailing inverter folded in).
  bool inverted_output = false;
  /// Differential logic reads either phase of a net for free: when set,
  /// input i is the complement of `inputs[i]` (empty means none inverted).
  /// CMOS netlists never use this; the mapper inserts inverter cells.
  std::vector<bool> input_inverted;
};

class Design {
 public:
  explicit Design(std::string name = "top");

  const std::string& name() const { return name_; }

  NetId add_net(const std::string& hint = "n");
  std::size_t num_nets() const { return net_names_.size(); }
  const std::string& net_name(NetId n) const { return net_names_.at(n); }

  InstId add_instance(Instance inst);
  std::size_t num_instances() const { return instances_.size(); }
  const Instance& instance(InstId i) const { return instances_.at(i); }
  const std::vector<Instance>& instances() const { return instances_; }

  /// Primary ports.
  void mark_input(NetId n, const std::string& name);
  /// `inverted` marks a differential output read on its complement phase.
  void mark_output(NetId n, const std::string& name, bool inverted = false);
  const std::vector<NetId>& inputs() const { return inputs_; }
  const std::vector<NetId>& outputs() const { return outputs_; }
  bool output_inverted(std::size_t i) const { return output_inverted_.at(i); }
  const std::string& port_name(std::size_t i, bool is_input) const;

  /// Index of the instance driving each net (-1 for primary inputs).
  std::vector<InstId> driver_map() const;
  /// Instances in topological order (sequential cells act as sources).
  /// Throws if the combinational part has a cycle.
  std::vector<InstId> topological_order() const;

  /// Sum of cell areas in the given library, plus inverter overhead where
  /// the mapper recorded folded inversions and the library charges for them.
  struct Stats {
    std::size_t cells = 0;       ///< library cell instances
    std::size_t inverters = 0;   ///< extra CMOS inverters (folded inversions)
    double area = 0.0;           ///< [m^2]
    double critical_path = 0.0;  ///< combinational depth in delay units [s]
  };
  Stats stats(const cells::CellLibrary& lib) const;

  /// Structural lint: undriven instance inputs, dangling (unread) internal
  /// nets, and outputs without a driver.  Clean synthesized designs report
  /// no issues; hand-built test designs may legitimately have some.
  struct LintIssue {
    enum class Kind { kUndrivenInput, kDanglingNet, kUndrivenOutput };
    Kind kind;
    NetId net = kNoNet;
    InstId instance = -1;
  };
  std::vector<LintIssue> lint() const;

 private:
  std::string name_;
  std::vector<std::string> net_names_;
  std::vector<Instance> instances_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  std::vector<bool> output_inverted_;
  std::vector<std::string> input_names_;
  std::vector<std::string> output_names_;
};

}  // namespace pgmcml::netlist
