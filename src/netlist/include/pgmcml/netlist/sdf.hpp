// SDF (Standard Delay Format) export: the delay back-annotation file the
// paper feeds from P&R into Modelsim ("the delay back annotation (in SDF
// format) as input", Section 6).  Emits per-instance IOPATH delays from the
// library, optionally with the placed wire (INTERCONNECT) delays.
#pragma once

#include <string>

#include "pgmcml/cells/library.hpp"
#include "pgmcml/netlist/design.hpp"
#include "pgmcml/netlist/place.hpp"

namespace pgmcml::netlist {

/// Renders the design's delays as SDF.  When `placement` is non-null, each
/// driven net also gets an INTERCONNECT entry from the placed wire length.
std::string to_sdf(const Design& design, const cells::CellLibrary& library,
                   const PlacementResult* placement = nullptr,
                   double wire_delay_per_length = 6e-8);

}  // namespace pgmcml::netlist
