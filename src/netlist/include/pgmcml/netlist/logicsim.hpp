// Event-driven gate-level logic simulator.
//
// Plays the role Modelsim plays in the paper's flow: it simulates the mapped
// netlist with per-cell propagation delays and records every net transition
// (a VCD in memory).  The recorded event stream -- which instance toggled,
// when, in which direction -- is exactly what the power-trace composer needs
// to reproduce the Nanosim current simulation.
#pragma once

#include <queue>
#include <vector>

#include "pgmcml/cells/library.hpp"
#include "pgmcml/netlist/design.hpp"

namespace pgmcml::netlist {

/// One recorded net transition.
struct SimEvent {
  double time = 0.0;
  NetId net = kNoNet;
  bool value = false;
  InstId driver = -1;  ///< -1 for primary-input changes
};

class LogicSim {
 public:
  /// `library` supplies per-cell delays; pass nullptr for a 10 ps unit delay.
  explicit LogicSim(const Design& design,
                    const cells::CellLibrary* library = nullptr);

  /// Schedules a primary-input change at `time` (>= current time).
  void set_input(NetId net, bool value, double time);

  /// Processes all events up to and including `time`.
  void run_until(double time);

  /// Convenience: apply an input assignment at the current time, advance
  /// far enough for the combinational logic to settle, and return.
  void apply_and_settle(const std::vector<std::pair<NetId, bool>>& assign);

  double now() const { return now_; }
  bool value(NetId net) const { return values_.at(net); }

  const std::vector<SimEvent>& events() const { return events_; }
  void clear_events() { events_.clear(); }

  /// Output toggles of each instance since construction (activity factors).
  std::size_t toggle_count(InstId inst) const { return toggles_.at(inst); }
  std::size_t total_toggles() const;

 private:
  struct Pending {
    double time;
    long seq;  ///< tie-break so same-time events fire in schedule order
    NetId net;
    bool value;
    InstId driver;
    bool operator>(const Pending& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void schedule(double time, NetId net, bool value, InstId driver);
  void fire(const Pending& ev);
  void evaluate_instance(InstId inst, double time);
  double delay_of(const Instance& inst) const;

  const Design& design_;
  const cells::CellLibrary* library_;
  std::vector<bool> values_;
  std::vector<bool> prev_clk_;        ///< per instance, for edge detection
  std::vector<bool> state_;           ///< per instance, sequential state
  std::vector<std::vector<InstId>> fanout_;  ///< net -> instances reading it
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue_;
  std::vector<SimEvent> events_;
  std::vector<std::size_t> toggles_;
  double now_ = 0.0;
  long seq_counter_ = 0;
};

/// Pure-function evaluation of a cell's outputs from input values.
/// `state` is the current sequential state (q) for latches/flops.
std::vector<bool> eval_cell(mcml::CellKind kind,
                            const std::vector<bool>& inputs, bool clk,
                            bool ctrl, bool state);

}  // namespace pgmcml::netlist
