// Row-based placement and fat-wire routing estimation.
//
// The paper's flow places and routes the differential netlist with the
// "fat wire" approach of Badel et al. (DATE 2008): each logical net is a
// differential pair routed as one double-width wire so both phases see the
// same length and load.  This module models that step well enough to close
// the loop on the physical numbers:
//
//   * places cells into fixed-height rows (greedy topological ordering, a
//     stand-in for the commercial placer),
//   * estimates each net's length by half-perimeter wire length (HPWL),
//   * derives wire capacitance -- doubled for fat (differential) wires --
//     and a wire-aware critical path,
//   * reports utilization, total wire length and routing-layer demand.
#pragma once

#include <cstddef>
#include <vector>

#include "pgmcml/cells/library.hpp"
#include "pgmcml/netlist/design.hpp"

namespace pgmcml::netlist {

struct PlacementOptions {
  double row_height = 2.52e-6;   ///< library row height [m]
  double target_utilization = 0.75;
  double wire_cap_per_length = 0.18e-9;  ///< [F/m] (0.18 fF/um)
  /// Differential (fat-wire) routing doubles the wire footprint and load.
  bool fat_wires = true;
  double wire_delay_per_length = 6e-8;  ///< [s/m] lumped-RC slope (60 ps/mm)
};

struct CellSite {
  InstId instance = -1;
  int row = 0;
  double x = 0.0;  ///< left edge [m]
  double width = 0.0;
};

struct PlacementResult {
  std::vector<CellSite> sites;       ///< one per instance
  std::size_t rows = 0;
  double die_width = 0.0;            ///< [m]
  double die_height = 0.0;           ///< [m]
  double cell_area = 0.0;            ///< sum of cell footprints [m^2]
  double die_area = 0.0;             ///< rows x width x height [m^2]
  double utilization = 0.0;
  double total_wire_length = 0.0;    ///< HPWL sum, fat-wire adjusted [m]
  double total_wire_cap = 0.0;       ///< [F]
  /// Critical path including per-net wire delay [s].
  double routed_critical_path = 0.0;
  /// Per-net HPWL (indexed by NetId; 0 for unrouted/port-only nets).
  std::vector<double> net_length;
};

/// Places the design and estimates routing.
PlacementResult place_and_route(const Design& design,
                                const cells::CellLibrary& library,
                                const PlacementOptions& options = {});

}  // namespace pgmcml::netlist
