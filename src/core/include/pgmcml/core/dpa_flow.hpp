// End-to-end DPA evaluation flow (Section 6 / Fig. 6 of the paper):
//
//   synthesize the reduced AES (AddRoundKey + S-box) for a logic style
//   -> simulate it for a stream of plaintexts under a fixed secret key
//   -> compose the supply-current trace of every run (1 ps-class grid)
//   -> mount CPA with the Hamming-weight-of-S-box-output model
//   -> report key rank, distinguishability margin, and traces-to-disclosure.
//
// The expected outcome, as in the paper: CMOS discloses the key, MCML and
// PG-MCML do not, and the sleep machinery does not weaken PG-MCML.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "pgmcml/cells/library.hpp"
#include "pgmcml/netlist/design.hpp"
#include "pgmcml/power/tracer.hpp"
#include "pgmcml/sca/attack.hpp"
#include "pgmcml/sca/trace_source.hpp"
#include "pgmcml/sca/traces.hpp"
#include "pgmcml/spice/solve_error.hpp"

namespace pgmcml::core {

/// What the acquisition measures per trace.
enum class AcquisitionMode {
  /// Transient supply-current trace of the evaluation (the Fig. 6 setup).
  kDynamic,
  /// Quiescent leakage current while the circuit HOLDS each state: the
  /// samples are repeated DC measurements, laid out as [awake hold | asleep
  /// hold] (see sca::static_window_bounds).  For power-gated libraries the
  /// second window measures the gated-off floor; non-gated libraries keep
  /// holding, so both windows see the same physics.  This is the
  /// measurement a static-power attack (Bhandari et al.) averages.
  kStatic,
};

struct DpaFlowOptions {
  std::size_t num_traces = 2000;
  /// Global index of the first trace this source produces.  Rng streams,
  /// noise nonces, and the fault hook are keyed on the GLOBAL index
  /// (first_trace + local offset), so a source over [k, k + n) emits traces
  /// bitwise identical to traces k..k+n-1 of a source over [0, N) -- the
  /// contract that lets a sharded campaign split and resume ranges freely.
  std::size_t first_trace = 0;
  std::uint8_t key = 0x2b;
  std::uint64_t seed = 7;
  /// Trace grid: 2 ps steps covering the evaluation window after the
  /// plaintext edge (paper: 1 ps / 1 uA resolution; 2 ps keeps the 256x256
  /// full sweep tractable while oversampling every kernel).
  double dt = 2e-12;
  std::size_t samples = 900;
  double noise_sigma = 2e-6;
  /// PG-MCML: wrap each operation in a wake/sleep window (the sleep signal
  /// toggling with the data is part of what Fig. 6 shows is harmless).
  bool gate_per_operation = true;
  bool keep_time_curves = false;
  bool compute_mtd = false;
  /// Transient traces (dynamic attacks) or quiescent holds (static attacks).
  AcquisitionMode acquisition = AcquisitionMode::kDynamic;
  /// Mount the static-power attack on both gating windows of a quiescent
  /// acquisition.  Requires acquisition == kStatic (run_dpa_flow throws
  /// std::invalid_argument otherwise -- the config layer rejects such plans
  /// with a path-qualified error before they get here).
  bool compute_static = false;
  /// Mount the MLPA multi-bit attack on the acquired traces (any mode).
  bool compute_mlpa = false;
  /// When >= 0, every acquisition uses this fixed plaintext byte (for the
  /// TVLA fixed class); -1 = random plaintexts.
  int fixed_plaintext = -1;
  /// Use SPICE-extracted current kernels instead of the analytic defaults.
  bool spice_kernels = false;
  /// Traces simulated (and resident) per streaming batch: the acquisition
  /// source holds one batch of row buffers, so this bounds the flow's trace
  /// memory at batch_size * samples doubles regardless of num_traces.
  std::size_t batch_size = sca::kDefaultTraceBatch;
  /// Copy the streamed traces into DpaFlowResult::traces.  Disable for large
  /// campaigns that only need the attack statistics: the flow then never
  /// materializes the trace matrix (the attack results are bitwise identical
  /// either way).
  bool keep_traces = true;
  /// Test-only fault hook, called as (trace_index, attempt) before each
  /// trace is simulated; a throw from here fails that attempt.  The
  /// acquisition retries a failed trace once, then skips it and records the
  /// incident — it never aborts the flow.  Keyed on the trace index, so the
  /// same traces fail at any thread count.
  std::function<void(std::size_t, int)> acquisition_fault_hook;
};

struct DpaFlowResult {
  sca::TraceSet traces;
  sca::CpaResult cpa;
  sca::DpaResult dpa;
  int key_rank = -1;       ///< 0 = key disclosed
  double margin = 0.0;     ///< true-key peak minus best wrong guess
  std::size_t mtd = 0;     ///< measurements to disclosure (0 = never)
  /// Static-power verdicts per gating window (compute_static only).
  sca::StaticPowerResult static_awake;
  sca::StaticPowerResult static_asleep;
  std::size_t static_awake_mtd = 0;   ///< MTD of the awake-window attack
  std::size_t static_asleep_mtd = 0;  ///< MTD of the asleep-window attack
  /// MLPA verdict (compute_mlpa only).
  sca::MlpaResult mlpa;
  std::size_t mlpa_mtd = 0;
  netlist::Design::Stats stats;
  double mean_current = 0.0;  ///< average supply current over all traces [A]
  /// Aggregated acquisition outcomes: kernel-extraction retries, per-trace
  /// retries/skips, engine-effort totals.  clean() when nothing failed.
  spice::FlowDiagnostics diagnostics;
};

/// Streaming acquisition of the reduced AES target: a TraceSource that
/// simulates `options.batch_size` traces per next() call into reused row
/// buffers, so an arbitrarily long campaign holds one batch in memory.
/// Trace indices are global -- Rng streams, noise nonces, and the fault hook
/// are keyed on the campaign index -- so the stream is bitwise identical to
/// the materialized acquisition at any thread count and any batch size.
/// Failed traces are retried once, then skipped (excluded from the batch)
/// and recorded in diagnostics(), exactly as the batch flow did.
class AcquisitionSource : public sca::TraceSource {
 public:
  /// Aggregated outcomes so far: kernel extraction plus every batch
  /// produced.  reset() rewinds this to the post-construction state.
  virtual const spice::FlowDiagnostics& diagnostics() const = 0;
  /// Mean supply current over the traces produced so far [A].
  virtual double mean_current() const = 0;
  /// Traces ATTEMPTED so far (skipped traces included): the resume cursor a
  /// checkpointing consumer persists.  A new source with first_trace
  /// advanced by this count continues the identical global trace sequence.
  /// One next() call can consume more than one batch_size when every trace
  /// of a batch is skipped, so consumers must read this, not infer it.
  virtual std::size_t traces_consumed() const = 0;
  /// Synthesis stats of the mapped target.
  virtual const netlist::Design::Stats& design_stats() const = 0;
};

std::unique_ptr<AcquisitionSource> make_acquisition_source(
    const cells::CellLibrary& library, const DpaFlowOptions& options = {});

/// Acquires traces of the reduced AES target and mounts the attacks.
/// Single-pass: one streamed acquisition feeds the CPA/DPA accumulators and
/// the checkpointed MTD tracker simultaneously.
DpaFlowResult run_dpa_flow(const cells::CellLibrary& library,
                           const DpaFlowOptions& options = {});

/// Acquisition only, materialized (for callers that reuse the trace matrix).
/// Benches that stream should use make_acquisition_source directly.
sca::TraceSet acquire_reduced_aes_traces(const cells::CellLibrary& library,
                                         const DpaFlowOptions& options = {});

}  // namespace pgmcml::core
