// The Section 6 system experiment: the S-box ISE attached to the OpenRISC-
// style CPU, built in each of the three logic styles, running AES.
//
// Reproduces:
//   * Table 3 -- cells / area / delay / average power per style;
//   * Fig. 5  -- the supply-current waveform of the ISE macro around one
//     custom-instruction execution, with and without power gating.
//
// The flow mirrors the paper's: the ISA simulator (Modelsim stand-in)
// produces the cycle-accurate activity -- which cycles execute l.sbox and
// with which operand words -- and the power composer (Nanosim stand-in)
// turns the mapped netlist's event stream into current.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pgmcml/cells/library.hpp"
#include "pgmcml/netlist/design.hpp"
#include "pgmcml/or1k/aes_program.hpp"
#include "pgmcml/util/waveform.hpp"

namespace pgmcml::core {

struct IseExperimentOptions {
  double clock_hz = 400e6;  ///< paper operating frequency
  int blocks = 20;          ///< AES encryptions executed on the CPU model
  /// Idle cycles between encryptions; raises the paper's "surrounding
  /// software" share.  0.01 % duty needs a large idle share (the default
  /// reproduces roughly the paper's scenario per-magnitude).
  int idle_spin = 0;
  std::uint64_t seed = 11;
  /// Extra wake margin before / sleep delay after each ISE cycle [s]
  /// (the ~1 ns buffered sleep-tree insertion delay of Section 6).
  double sleep_margin = 1e-9;
};

struct IseStyleResult {
  std::string style;
  std::size_t cells = 0;
  std::size_t inverters = 0;
  double area = 0.0;           ///< [m^2]
  double critical_path = 0.0;  ///< mapped S-box unit delay [s]
  double avg_power = 0.0;      ///< workload-average supply power [W]
  double active_power = 0.0;   ///< power while the ISE computes [W]
  double idle_power = 0.0;     ///< power while the ISE is idle [W]
  double duty = 0.0;           ///< fraction of cycles executing l.sbox
};

/// Runs the Table 3 experiment for all three styles.
std::vector<IseStyleResult> run_ise_experiment(
    const IseExperimentOptions& options = {});

/// Composes the Fig. 5 current waveform: supply current of the ISE macro
/// over a window containing one custom-instruction execution.
struct Fig5Waveforms {
  util::Waveform mcml;     ///< conventional MCML: flat high current
  util::Waveform pgmcml;   ///< PG-MCML: gated pulse
  util::Waveform sleep;    ///< the sleep(-bar) control signal, 0/1
  double window = 0.0;     ///< [s]
};
Fig5Waveforms compose_fig5_waveforms(const IseExperimentOptions& options = {});

}  // namespace pgmcml::core
