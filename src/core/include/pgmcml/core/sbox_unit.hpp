// Hardware builders for the paper's two evaluation circuits:
//
//  * The S-box ISE functional unit (Section 6): four parallel AES S-boxes
//    covering the 32-bit processor word, with input/output registers --
//    the custom-instruction datapath that sits in the OpenRISC pipeline.
//  * The reduced AES security target: AddRoundKey + one S-box
//    (out = sbox(plaintext ^ key)), the circuit attacked in Fig. 6.
//
// Both are emitted as Module IR and technology-mapped onto any of the three
// libraries, mirroring the paper's synthesize-per-style methodology.
#pragma once

#include "pgmcml/cells/library.hpp"
#include "pgmcml/netlist/design.hpp"
#include "pgmcml/synth/map.hpp"
#include "pgmcml/synth/module.hpp"

namespace pgmcml::core {

/// Builds the 32-bit S-box ISE datapath IR.
/// `registered` adds input and output register stages (as a pipeline
/// functional unit would have).
synth::Module build_sbox_ise_module(bool registered = true);

/// Builds the reduced AES target IR: 8-bit plaintext input, 8-bit key input,
/// output = sbox(p ^ k).
synth::Module build_reduced_aes_module();

/// Maps the S-box ISE for a given library (paper Table 3 row).
synth::MapResult map_sbox_ise(const cells::CellLibrary& library,
                              bool registered = true);

/// Maps the reduced AES target for a given library (Fig. 6 DUT).
synth::MapResult map_reduced_aes(const cells::CellLibrary& library);

}  // namespace pgmcml::core
