// Full AES-128 encryption datapath in hardware -- the scaling extension of
// the paper's approach: instead of protecting only the S-box ISE, build the
// whole cipher round in the DPA-resistant library (one round per cycle,
// iterative datapath with a 128-bit state register).
//
//   state' = load ? (plaintext ^ round_key)
//                 : AddRoundKey(MixColumns?(ShiftRows(SubBytes(state))), rk)
//
// Round keys stream in on a 128-bit bus (the key schedule runs on the host
// or a side unit, as in many compact cores).  SubBytes instantiates sixteen
// synthesized S-boxes; MixColumns is pure XOR/xtime wiring.
#pragma once

#include <array>
#include <cstdint>

#include "pgmcml/aes/aes.hpp"
#include "pgmcml/cells/library.hpp"
#include "pgmcml/synth/map.hpp"
#include "pgmcml/synth/module.hpp"

namespace pgmcml::core {

/// Builds the iterative AES-128 core IR.
/// Inputs: pt[128], rk[128], load, final_round.  Output: state[128] (the
/// registered state; equals the ciphertext after the last round's tick).
synth::Module build_aes_core_module();

/// Runs the core functionally through Module::evaluate for one block.
aes::Block run_aes_core(const synth::Module& core, const aes::Block& plaintext,
                        const aes::Key& key);

/// Maps the core onto a library (for the area/power scaling table).
synth::MapResult map_aes_core(const cells::CellLibrary& library);

/// First-round CPA against the mapped full core: byte 0 of the plaintext
/// varies (chosen-plaintext style, other bytes fixed), the attack model is
/// HW(sbox(p0 ^ k0)).  Returns the CPA result and the true key byte's rank.
struct FullCoreCpaResult {
  int key_rank = -1;
  int best_guess = -1;
  double margin = 0.0;
  std::size_t cells = 0;
};
FullCoreCpaResult run_full_core_cpa(const cells::CellLibrary& library,
                                    std::size_t num_traces,
                                    std::uint8_t key_byte = 0x2b,
                                    std::uint64_t seed = 17);

}  // namespace pgmcml::core
