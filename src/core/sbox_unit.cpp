#include "pgmcml/core/sbox_unit.hpp"

#include "pgmcml/aes/aes.hpp"
#include "pgmcml/synth/lut.hpp"

namespace pgmcml::core {

using synth::Lit;
using synth::Module;

Module build_sbox_ise_module(bool registered) {
  Module m("sbox_ise");
  const std::vector<std::uint8_t> table(aes::sbox().begin(), aes::sbox().end());
  std::vector<Lit> word_in;
  for (int lane = 0; lane < 4; ++lane) {
    const auto bus = m.input_bus("in" + std::to_string(lane), 8);
    word_in.insert(word_in.end(), bus.begin(), bus.end());
  }
  for (int lane = 0; lane < 4; ++lane) {
    std::vector<Lit> lane_in(word_in.begin() + 8 * lane,
                             word_in.begin() + 8 * (lane + 1));
    if (registered) {
      for (Lit& bit : lane_in) bit = m.dff(bit);
    }
    std::vector<Lit> lane_out = synth::synthesize_lut8(m, lane_in, table);
    if (registered) {
      for (Lit& bit : lane_out) bit = m.dff(bit);
    }
    m.output_bus("out" + std::to_string(lane), lane_out);
  }
  return m;
}

Module build_reduced_aes_module() {
  Module m("reduced_aes");
  const auto p = m.input_bus("p", 8);
  const auto k = m.input_bus("k", 8);
  const auto x = synth::bus_xor(m, p, k);
  const std::vector<std::uint8_t> table(aes::sbox().begin(), aes::sbox().end());
  m.output_bus("s", synth::synthesize_lut8(m, x, table));
  return m;
}

synth::MapResult map_sbox_ise(const cells::CellLibrary& library,
                              bool registered) {
  const Module m = build_sbox_ise_module(registered);
  return synth::map_module(m, library);
}

synth::MapResult map_reduced_aes(const cells::CellLibrary& library) {
  const Module m = build_reduced_aes_module();
  return synth::map_module(m, library);
}

}  // namespace pgmcml::core
