#include "pgmcml/core/dpa_flow.hpp"

#include <stdexcept>
#include <string>

#include "pgmcml/core/sbox_unit.hpp"
#include "pgmcml/netlist/logicsim.hpp"
#include "pgmcml/power/kernels.hpp"
#include "pgmcml/util/parallel.hpp"
#include "pgmcml/util/rng.hpp"
#include "pgmcml/util/stats.hpp"

namespace pgmcml::core {

using netlist::LogicSim;
using netlist::NetId;

namespace {

struct Acquisition {
  sca::TraceSet traces;
  double mean_current = 0.0;
  netlist::Design::Stats stats;
  spice::FlowDiagnostics diagnostics;
};

/// Parses a bus port name of the form `<prefix>[<index>]` (e.g. "p[3]").
/// Returns -1 when the name has a different prefix or shape; throws when it
/// matches the prefix but the index is malformed or out of range — the
/// fragile `name[2] - '0'` this replaces read garbage indices silently.
int parse_bus_index(const std::string& name, char prefix, int width) {
  if (name.empty() || name[0] != prefix) return -1;
  if (name.size() < 4 || name[1] != '[' || name.back() != ']') {
    throw std::invalid_argument("dpa_flow: malformed port name '" + name +
                                "' (expected " + prefix + "[<index>])");
  }
  const std::string digits = name.substr(2, name.size() - 3);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("dpa_flow: non-numeric index in port name '" +
                                name + "'");
  }
  const int idx = std::stoi(digits);
  if (idx < 0 || idx >= width) {
    throw std::out_of_range("dpa_flow: port index " + std::to_string(idx) +
                            " out of range [0, " + std::to_string(width) +
                            ") in '" + name + "'");
  }
  return idx;
}

Acquisition acquire(const cells::CellLibrary& library,
                    const DpaFlowOptions& options) {
  const synth::MapResult mapped = map_reduced_aes(library);
  const netlist::Design& design = mapped.design;

  power::TraceOptions topt;
  topt.t_start = 0.4e-9;
  topt.dt = options.dt;
  topt.samples = options.samples;
  topt.noise_sigma = options.noise_sigma;
  topt.seed = options.seed;
  Acquisition out;
  const power::CurrentKernels kernels =
      options.spice_kernels
          ? power::kernels_from_spice({}, &out.diagnostics)
          : power::default_kernels();
  const power::PowerTracer tracer(design, library, kernels, topt);

  // Port lookup: p[0..7], k[0..7] inputs (plus possibly const0).
  std::vector<NetId> p_nets(8, netlist::kNoNet);
  std::vector<NetId> k_nets(8, netlist::kNoNet);
  NetId const_net = netlist::kNoNet;
  for (std::size_t i = 0; i < design.inputs().size(); ++i) {
    const std::string& name = design.port_name(i, true);
    int idx = parse_bus_index(name, 'p', 8);
    if (idx >= 0) {
      p_nets[idx] = design.inputs()[i];
      continue;
    }
    idx = parse_bus_index(name, 'k', 8);
    if (idx >= 0) {
      k_nets[idx] = design.inputs()[i];
      continue;
    }
    const_net = design.inputs()[i];
  }
  for (int b = 0; b < 8; ++b) {
    if (p_nets[b] == netlist::kNoNet || k_nets[b] == netlist::kNoNet) {
      throw std::runtime_error("dpa_flow: mapped design is missing input bit " +
                               std::to_string(b) + " of p[] or k[]");
    }
  }

  power::SleepSchedule schedule;
  if (library.power_gated() && options.gate_per_operation) {
    // Wake shortly before the operand edge, sleep after evaluation: this is
    // the data-synchronous sleep toggling whose harmlessness Fig. 6 shows.
    schedule.awake.push_back({0.2e-9, 0.4e-9 + options.dt * options.samples});
  }

  out.stats = design.stats(library);
  out.traces = sca::TraceSet(options.samples);
  out.traces.reserve(options.num_traces);

  // Every trace is an independent simulation: its own LogicSim and its own
  // RNG stream derived from (seed, trace index), so the acquisition is
  // bitwise identical at any thread count (and under the serial fallback).
  // A trace whose simulation throws (a real solver failure or the test-only
  // fault hook) is retried once, then skipped and recorded — per-trace
  // outcomes live in index-addressed slots so the aggregate stays
  // deterministic too.
  std::vector<std::uint8_t> plaintexts(options.num_traces, 0);
  std::vector<std::vector<double>> acquired(options.num_traces);
  std::vector<char> skipped(options.num_traces, 0);
  std::vector<spice::FlowDiagnostics> trace_diag(options.num_traces);
  util::parallel_for(options.num_traces, [&](std::size_t t) {
    trace_diag[t].record_attempt();
    const std::string stage = "trace:" + std::to_string(t);
    for (int attempt = 0; attempt < 2; ++attempt) {
      try {
        if (options.acquisition_fault_hook) {
          options.acquisition_fault_hook(t, attempt);
        }
        util::Rng rng = util::Rng::stream(options.seed, t);
        const auto plaintext =
            options.fixed_plaintext >= 0
                ? static_cast<std::uint8_t>(options.fixed_plaintext)
                : static_cast<std::uint8_t>(rng.bounded(256));

        LogicSim sim(design, &library);
        std::vector<std::pair<NetId, bool>> init;
        for (int b = 0; b < 8; ++b) {
          init.emplace_back(k_nets[b], (options.key >> b) & 1);
          init.emplace_back(p_nets[b], false);
        }
        if (const_net != netlist::kNoNet) init.emplace_back(const_net, false);
        sim.apply_and_settle(init);  // precharge state: p = 0, key applied
        sim.clear_events();
        sim.run_until(0.5e-9);

        std::vector<std::pair<NetId, bool>> stimulus;
        for (int b = 0; b < 8; ++b) {
          stimulus.emplace_back(p_nets[b], (plaintext >> b) & 1);
        }
        sim.apply_and_settle(stimulus);

        plaintexts[t] = plaintext;
        acquired[t] = tracer.trace(sim.events(), schedule, t);
        if (attempt > 0) trace_diag[t].record_recovery(stage);
        return;
      } catch (const std::exception& e) {
        if (attempt == 0) {
          trace_diag[t].record_retry(stage, e.what());
        } else {
          trace_diag[t].record_skip(stage, e.what());
          skipped[t] = 1;
        }
      }
    }
  });

  // Ordered merge: accumulator order matches the serial loop exactly, and
  // skipped traces are excluded identically at any thread count.
  util::RunningStats current_stats;
  for (std::size_t t = 0; t < options.num_traces; ++t) {
    out.diagnostics.merge(trace_diag[t]);
    if (skipped[t]) continue;
    current_stats.add(util::mean(acquired[t]));
    out.traces.add(plaintexts[t], std::move(acquired[t]));
  }
  out.mean_current = current_stats.mean();
  return out;
}

}  // namespace

sca::TraceSet acquire_reduced_aes_traces(const cells::CellLibrary& library,
                                         const DpaFlowOptions& options) {
  return acquire(library, options).traces;
}

DpaFlowResult run_dpa_flow(const cells::CellLibrary& library,
                           const DpaFlowOptions& options) {
  Acquisition acq = acquire(library, options);
  DpaFlowResult result;
  result.stats = acq.stats;
  result.mean_current = acq.mean_current;
  result.diagnostics = std::move(acq.diagnostics);
  result.cpa = sca::cpa_attack(acq.traces, sca::LeakageModel::kHammingWeight,
                               options.keep_time_curves);
  result.dpa = sca::dpa_attack(acq.traces);
  result.key_rank = result.cpa.key_rank(options.key);
  result.margin = result.cpa.margin(options.key);
  if (options.compute_mtd) {
    result.mtd = sca::measurements_to_disclosure(
        acq.traces, options.key, sca::LeakageModel::kHammingWeight);
  }
  result.traces = std::move(acq.traces);
  return result;
}

}  // namespace pgmcml::core
