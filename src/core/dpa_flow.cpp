#include "pgmcml/core/dpa_flow.hpp"

#include "pgmcml/core/sbox_unit.hpp"
#include "pgmcml/netlist/logicsim.hpp"
#include "pgmcml/power/kernels.hpp"
#include "pgmcml/util/parallel.hpp"
#include "pgmcml/util/rng.hpp"
#include "pgmcml/util/stats.hpp"

namespace pgmcml::core {

using netlist::LogicSim;
using netlist::NetId;

namespace {

struct Acquisition {
  sca::TraceSet traces;
  double mean_current = 0.0;
  netlist::Design::Stats stats;
};

Acquisition acquire(const cells::CellLibrary& library,
                    const DpaFlowOptions& options) {
  const synth::MapResult mapped = map_reduced_aes(library);
  const netlist::Design& design = mapped.design;

  power::TraceOptions topt;
  topt.t_start = 0.4e-9;
  topt.dt = options.dt;
  topt.samples = options.samples;
  topt.noise_sigma = options.noise_sigma;
  topt.seed = options.seed;
  const power::CurrentKernels kernels = options.spice_kernels
                                            ? power::kernels_from_spice({})
                                            : power::default_kernels();
  const power::PowerTracer tracer(design, library, kernels, topt);

  // Port lookup: p[0..7], k[0..7] inputs (plus possibly const0).
  std::vector<NetId> p_nets(8, netlist::kNoNet);
  std::vector<NetId> k_nets(8, netlist::kNoNet);
  NetId const_net = netlist::kNoNet;
  for (std::size_t i = 0; i < design.inputs().size(); ++i) {
    const std::string& name = design.port_name(i, true);
    if (name.size() >= 4 && name[0] == 'p') {
      p_nets[name[2] - '0'] = design.inputs()[i];
    } else if (name.size() >= 4 && name[0] == 'k') {
      k_nets[name[2] - '0'] = design.inputs()[i];
    } else {
      const_net = design.inputs()[i];
    }
  }

  power::SleepSchedule schedule;
  if (library.power_gated() && options.gate_per_operation) {
    // Wake shortly before the operand edge, sleep after evaluation: this is
    // the data-synchronous sleep toggling whose harmlessness Fig. 6 shows.
    schedule.awake.push_back({0.2e-9, 0.4e-9 + options.dt * options.samples});
  }

  Acquisition out;
  out.stats = design.stats(library);
  out.traces = sca::TraceSet(options.samples);
  out.traces.reserve(options.num_traces);

  // Every trace is an independent simulation: its own LogicSim and its own
  // RNG stream derived from (seed, trace index), so the acquisition is
  // bitwise identical at any thread count (and under the serial fallback).
  std::vector<std::uint8_t> plaintexts(options.num_traces, 0);
  std::vector<std::vector<double>> acquired(options.num_traces);
  util::parallel_for(options.num_traces, [&](std::size_t t) {
    util::Rng rng = util::Rng::stream(options.seed, t);
    const auto plaintext =
        options.fixed_plaintext >= 0
            ? static_cast<std::uint8_t>(options.fixed_plaintext)
            : static_cast<std::uint8_t>(rng.bounded(256));

    LogicSim sim(design, &library);
    std::vector<std::pair<NetId, bool>> init;
    for (int b = 0; b < 8; ++b) {
      init.emplace_back(k_nets[b], (options.key >> b) & 1);
      init.emplace_back(p_nets[b], false);
    }
    if (const_net != netlist::kNoNet) init.emplace_back(const_net, false);
    sim.apply_and_settle(init);  // precharge state: p = 0, key applied
    sim.clear_events();
    sim.run_until(0.5e-9);

    std::vector<std::pair<NetId, bool>> stimulus;
    for (int b = 0; b < 8; ++b) {
      stimulus.emplace_back(p_nets[b], (plaintext >> b) & 1);
    }
    sim.apply_and_settle(stimulus);

    plaintexts[t] = plaintext;
    acquired[t] = tracer.trace(sim.events(), schedule, t);
  });

  // Ordered merge: accumulator order matches the serial loop exactly.
  util::RunningStats current_stats;
  for (std::size_t t = 0; t < options.num_traces; ++t) {
    current_stats.add(util::mean(acquired[t]));
    out.traces.add(plaintexts[t], std::move(acquired[t]));
  }
  out.mean_current = current_stats.mean();
  return out;
}

}  // namespace

sca::TraceSet acquire_reduced_aes_traces(const cells::CellLibrary& library,
                                         const DpaFlowOptions& options) {
  return acquire(library, options).traces;
}

DpaFlowResult run_dpa_flow(const cells::CellLibrary& library,
                           const DpaFlowOptions& options) {
  Acquisition acq = acquire(library, options);
  DpaFlowResult result;
  result.stats = acq.stats;
  result.mean_current = acq.mean_current;
  result.cpa = sca::cpa_attack(acq.traces, sca::LeakageModel::kHammingWeight,
                               options.keep_time_curves);
  result.dpa = sca::dpa_attack(acq.traces);
  result.key_rank = result.cpa.key_rank(options.key);
  result.margin = result.cpa.margin(options.key);
  if (options.compute_mtd) {
    result.mtd = sca::measurements_to_disclosure(
        acq.traces, options.key, sca::LeakageModel::kHammingWeight);
  }
  result.traces = std::move(acq.traces);
  return result;
}

}  // namespace pgmcml::core
