#include "pgmcml/core/dpa_flow.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "pgmcml/core/sbox_unit.hpp"
#include "pgmcml/netlist/logicsim.hpp"
#include "pgmcml/obs/obs.hpp"
#include "pgmcml/power/kernels.hpp"
#include "pgmcml/sca/accumulator.hpp"
#include "pgmcml/util/parallel.hpp"
#include "pgmcml/util/rng.hpp"
#include "pgmcml/util/stats.hpp"

namespace pgmcml::core {

using netlist::LogicSim;
using netlist::NetId;

namespace {

/// Parses a bus port name of the form `<prefix>[<index>]` (e.g. "p[3]").
/// Returns -1 when the name has a different prefix or shape; throws when it
/// matches the prefix but the index is malformed or out of range — the
/// fragile `name[2] - '0'` this replaces read garbage indices silently.
int parse_bus_index(const std::string& name, char prefix, int width) {
  if (name.empty() || name[0] != prefix) return -1;
  if (name.size() < 4 || name[1] != '[' || name.back() != ']') {
    throw std::invalid_argument("dpa_flow: malformed port name '" + name +
                                "' (expected " + prefix + "[<index>])");
  }
  const std::string digits = name.substr(2, name.size() - 3);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("dpa_flow: non-numeric index in port name '" +
                                name + "'");
  }
  const int idx = std::stoi(digits);
  if (idx < 0 || idx >= width) {
    throw std::out_of_range("dpa_flow: port index " + std::to_string(idx) +
                            " out of range [0, " + std::to_string(width) +
                            ") in '" + name + "'");
  }
  return idx;
}

/// The concrete streaming acquisition: synthesis, port lookup, and tracer
/// construction happen once, then every next() call simulates one batch of
/// traces into reused per-slot buffers.
///
/// Every trace is an independent simulation: its own LogicSim and its own
/// RNG stream derived from (seed, global trace index), so the stream is
/// bitwise identical at any thread count, any batch size, and to the old
/// materialize-everything acquisition.  A trace whose simulation throws (a
/// real solver failure or the test-only fault hook) is retried once, then
/// skipped and recorded — per-trace outcomes live in index-addressed slots
/// merged in index order, so the aggregate stays deterministic too.
class ReducedAesSource final : public AcquisitionSource {
 public:
  ReducedAesSource(const cells::CellLibrary& library,
                   const DpaFlowOptions& options)
      : options_(options), library_(library), mapped_(map_reduced_aes(library)) {
    if (options_.batch_size == 0) {
      throw std::invalid_argument("dpa_flow: batch_size must be > 0");
    }
    power::TraceOptions topt;
    topt.t_start = 0.4e-9;
    topt.dt = options_.dt;
    topt.samples = options_.samples;
    topt.noise_sigma = options_.noise_sigma;
    topt.seed = options_.seed;
    const power::CurrentKernels kernels =
        options_.spice_kernels
            ? power::kernels_from_spice({}, &baseline_diagnostics_)
            : power::default_kernels();
    tracer_ = std::make_unique<power::PowerTracer>(mapped_.design, library_,
                                                   kernels, topt);

    // Port lookup: p[0..7], k[0..7] inputs (plus possibly const0).
    const netlist::Design& design = mapped_.design;
    p_nets_.assign(8, netlist::kNoNet);
    k_nets_.assign(8, netlist::kNoNet);
    for (std::size_t i = 0; i < design.inputs().size(); ++i) {
      const std::string& name = design.port_name(i, true);
      int idx = parse_bus_index(name, 'p', 8);
      if (idx >= 0) {
        p_nets_[idx] = design.inputs()[i];
        continue;
      }
      idx = parse_bus_index(name, 'k', 8);
      if (idx >= 0) {
        k_nets_[idx] = design.inputs()[i];
        continue;
      }
      const_net_ = design.inputs()[i];
    }
    for (int b = 0; b < 8; ++b) {
      if (p_nets_[b] == netlist::kNoNet || k_nets_[b] == netlist::kNoNet) {
        throw std::runtime_error(
            "dpa_flow: mapped design is missing input bit " +
            std::to_string(b) + " of p[] or k[]");
      }
    }

    if (library_.power_gated() && options_.gate_per_operation) {
      // Wake shortly before the operand edge, sleep after evaluation: this
      // is the data-synchronous sleep toggling whose harmlessness Fig. 6
      // shows.
      schedule_.awake.push_back(
          {0.2e-9, 0.4e-9 + options_.dt * options_.samples});
    }

    stats_ = design.stats(library_);
    diagnostics_ = baseline_diagnostics_;

    const std::size_t slots =
        std::min(options_.batch_size, options_.num_traces);
    plaintexts_.assign(slots, 0);
    rows_.resize(slots);
    skipped_.assign(slots, 0);
    trace_diag_.resize(slots);
  }

  std::size_t samples_per_trace() const override { return options_.samples; }
  std::size_t size_hint() const override { return options_.num_traces; }

  bool next(sca::TraceBatch& batch) override {
    batch.clear();
    // Obs handles resolved once; batch latency lands in the
    // "time/core.acquisition.batch" histogram, alongside the counters the
    // FlowDiagnostics totals already carry per run.
    static struct Handles {
      obs::Counter batches, traces, retries, skips;
      Handles()
          : batches(obs::Registry::global().counter(
                "core.acquisition.batches")),
            traces(
                obs::Registry::global().counter("core.acquisition.traces")),
            retries(
                obs::Registry::global().counter("core.acquisition.retries")),
            skips(obs::Registry::global().counter("core.acquisition.skips")) {
      }
    } handles;
    while (batch.empty() && cursor_ < options_.num_traces) {
      obs::ScopedTimer batch_span("core.acquisition.batch");
      const std::size_t base = cursor_;
      const std::size_t n =
          std::min(options_.batch_size, options_.num_traces - base);
      for (std::size_t i = 0; i < n; ++i) {
        skipped_[i] = 0;
        trace_diag_[i] = spice::FlowDiagnostics{};
      }
      util::parallel_for(n, [&](std::size_t i) { simulate_slot(base, i); });
      // Ordered merge: accumulator order matches the serial loop exactly,
      // and skipped traces are excluded identically at any thread count.
      std::size_t batch_retries = 0;
      std::size_t batch_skips = 0;
      for (std::size_t i = 0; i < n; ++i) {
        batch_retries += trace_diag_[i].retries;
        batch_skips += trace_diag_[i].skipped;
        diagnostics_.merge(trace_diag_[i]);
        if (skipped_[i]) continue;
        current_stats_.add(util::mean(rows_[i]));
        batch.add(plaintexts_[i], std::span<const double>(rows_[i]));
      }
      cursor_ = base + n;
      handles.batches.add(1);
      handles.traces.add(n - batch_skips);
      handles.retries.add(batch_retries);
      handles.skips.add(batch_skips);
    }
    return !batch.empty();
  }

  void reset() override {
    cursor_ = 0;
    diagnostics_ = baseline_diagnostics_;
    current_stats_ = util::RunningStats{};
  }

  const spice::FlowDiagnostics& diagnostics() const override {
    return diagnostics_;
  }
  double mean_current() const override { return current_stats_.mean(); }
  std::size_t traces_consumed() const override { return cursor_; }
  const netlist::Design::Stats& design_stats() const override {
    return stats_;
  }

 private:
  void simulate_slot(std::size_t base, std::size_t i) {
    // Global campaign index: everything per-trace (Rng stream, noise nonce,
    // fault hook, diagnostics stage label) keys on it, never on the local
    // offset, so range-sharded sources reproduce the [0, N) stream exactly.
    const std::size_t t = options_.first_trace + base + i;
    trace_diag_[i].record_attempt();
    const std::string stage = "trace:" + std::to_string(t);
    for (int attempt = 0; attempt < 2; ++attempt) {
      try {
        if (options_.acquisition_fault_hook) {
          options_.acquisition_fault_hook(t, attempt);
        }
        util::Rng rng = util::Rng::stream(options_.seed, t);
        const auto plaintext =
            options_.fixed_plaintext >= 0
                ? static_cast<std::uint8_t>(options_.fixed_plaintext)
                : static_cast<std::uint8_t>(rng.bounded(256));

        const netlist::Design& design = mapped_.design;
        LogicSim sim(design, &library_);
        std::vector<std::pair<NetId, bool>> init;
        for (int b = 0; b < 8; ++b) {
          init.emplace_back(k_nets_[b], (options_.key >> b) & 1);
          init.emplace_back(p_nets_[b], false);
        }
        if (const_net_ != netlist::kNoNet) init.emplace_back(const_net_, false);
        sim.apply_and_settle(init);  // precharge state: p = 0, key applied
        sim.clear_events();
        sim.run_until(0.5e-9);

        std::vector<std::pair<NetId, bool>> stimulus;
        for (int b = 0; b < 8; ++b) {
          stimulus.emplace_back(p_nets_[b], (plaintext >> b) & 1);
        }
        sim.apply_and_settle(stimulus);

        plaintexts_[i] = plaintext;
        if (options_.acquisition == AcquisitionMode::kStatic) {
          compose_static_trace(sim, t, rows_[i]);
        } else {
          tracer_->trace_into(sim.events(), schedule_, t, rows_[i]);
        }
        if (attempt > 0) trace_diag_[i].record_recovery(stage);
        return;
      } catch (const std::exception& e) {
        if (attempt == 0) {
          trace_diag_[i].record_retry(stage, e.what());
        } else {
          trace_diag_[i].record_skip(stage, e.what());
          skipped_[i] = 1;
        }
      }
    }
  }

  /// Quiescent acquisition: the circuit holds the evaluated state and every
  /// sample is one DC measurement of the supply leakage -- awake for the
  /// first window, gated off (where the library can gate) for the second.
  /// Noise is drawn per sample from a stream keyed on the GLOBAL trace
  /// index, decorrelated from the plaintext stream, so static traces carry
  /// the same shard/resume determinism as dynamic ones.
  void compose_static_trace(const LogicSim& sim, std::size_t t,
                            std::vector<double>& out) const {
    const std::size_t m = options_.samples;
    out.resize(m);
    const auto awake_window =
        sca::static_window_bounds(sca::StaticWindow::kAwake, m);
    const double i_awake = tracer_->quiescent_current(sim, true);
    const double i_asleep = tracer_->quiescent_current(sim, false);
    const power::TraceOptions& topt = tracer_->options();
    util::Rng noise = util::Rng::stream(options_.seed ^ kStaticNoiseStream, t);
    for (std::size_t j = 0; j < m; ++j) {
      const double level = j < awake_window.second ? i_awake : i_asleep;
      if (topt.include_noise) {
        // Same front-end model as the transient tracer: scope noise plus
        // regulator noise proportional to the flowing current.
        const double sigma =
            topt.noise_sigma + topt.supply_noise_ratio * level;
        out[j] = level + noise.gaussian(0.0, sigma);
      } else {
        out[j] = level;
      }
    }
  }

  /// Seed perturbation for the static-noise stream (distinct from the
  /// plaintext stream keyed on the raw seed).
  static constexpr std::uint64_t kStaticNoiseStream = 0x57a71cc0ffeeULL;

  DpaFlowOptions options_;
  cells::CellLibrary library_;  ///< by value: the source owns its target
  synth::MapResult mapped_;     ///< stable address: tracer_ references it
  std::unique_ptr<power::PowerTracer> tracer_;
  std::vector<NetId> p_nets_;
  std::vector<NetId> k_nets_;
  NetId const_net_ = netlist::kNoNet;
  power::SleepSchedule schedule_;
  netlist::Design::Stats stats_;
  /// Diagnostics at construction (kernel extraction only): reset() target.
  spice::FlowDiagnostics baseline_diagnostics_;
  spice::FlowDiagnostics diagnostics_;
  util::RunningStats current_stats_;
  std::size_t cursor_ = 0;
  // Per-slot state reused across batches (index-addressed for determinism).
  std::vector<std::uint8_t> plaintexts_;
  std::vector<std::vector<double>> rows_;
  std::vector<char> skipped_;
  std::vector<spice::FlowDiagnostics> trace_diag_;
};

}  // namespace

std::unique_ptr<AcquisitionSource> make_acquisition_source(
    const cells::CellLibrary& library, const DpaFlowOptions& options) {
  return std::make_unique<ReducedAesSource>(library, options);
}

sca::TraceSet acquire_reduced_aes_traces(const cells::CellLibrary& library,
                                         const DpaFlowOptions& options) {
  auto source = make_acquisition_source(library, options);
  sca::TraceSet out(options.samples);
  out.reserve(options.num_traces);
  sca::TraceBatch batch;
  while (source->next(batch)) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      out.add(batch.plaintexts[i], std::vector<double>(batch.traces[i].begin(),
                                                       batch.traces[i].end()));
    }
  }
  return out;
}

DpaFlowResult run_dpa_flow(const cells::CellLibrary& library,
                           const DpaFlowOptions& options) {
  obs::ScopedTimer span("core.dpa_flow");
  if (options.compute_static &&
      options.acquisition != AcquisitionMode::kStatic) {
    throw std::invalid_argument(
        "run_dpa_flow: the static-power attack needs a static (quiescent) "
        "acquisition");
  }
  auto source = make_acquisition_source(library, options);
  DpaFlowResult result;
  result.stats = source->design_stats();

  // One streamed pass feeds every consumer: the CPA engine (checkpointed by
  // the MTD tracker when requested), the DPA engine, the optional static /
  // MLPA engines, and -- only when the caller wants the matrix -- the
  // materialized trace copy.
  const auto model = sca::LeakageModel::kHammingWeight;
  sca::MtdTracker mtd(model, options.samples, options.key, options.num_traces);
  sca::CpaAccumulator cpa(model, options.samples);
  sca::DpaAccumulator dpa(options.samples);
  // Optional engines live behind optionals: the MLPA state alone is
  // 256 x 8 x samples doubles, too big to allocate speculatively.
  std::optional<sca::StaticMtdTracker> st_awake_mtd, st_asleep_mtd;
  std::optional<sca::StaticPowerAccumulator> st_awake, st_asleep;
  std::optional<sca::MlpaMtdTracker> mlpa_mtd;
  std::optional<sca::MlpaAccumulator> mlpa;
  if (options.compute_static) {
    if (options.compute_mtd) {
      st_awake_mtd.emplace(model, options.samples, sca::StaticWindow::kAwake,
                           options.key, options.num_traces);
      st_asleep_mtd.emplace(model, options.samples, sca::StaticWindow::kAsleep,
                            options.key, options.num_traces);
    } else {
      st_awake.emplace(model, options.samples, sca::StaticWindow::kAwake);
      st_asleep.emplace(model, options.samples, sca::StaticWindow::kAsleep);
    }
  }
  if (options.compute_mlpa) {
    if (options.compute_mtd) {
      mlpa_mtd.emplace(options.samples, options.key, options.num_traces);
    } else {
      mlpa.emplace(options.samples);
    }
  }
  if (options.keep_traces) {
    result.traces = sca::TraceSet(options.samples);
    result.traces.reserve(options.num_traces);
  }
  sca::TraceBatch batch;
  while (source->next(batch)) {
    if (options.compute_mtd) {
      mtd.add_batch(batch);
    } else {
      cpa.add_batch(batch);
    }
    dpa.add_batch(batch);
    if (st_awake_mtd) st_awake_mtd->add_batch(batch);
    if (st_asleep_mtd) st_asleep_mtd->add_batch(batch);
    if (st_awake) st_awake->add_batch(batch);
    if (st_asleep) st_asleep->add_batch(batch);
    if (mlpa_mtd) mlpa_mtd->add_batch(batch);
    if (mlpa) mlpa->add_batch(batch);
    if (options.keep_traces) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        result.traces.add(batch.plaintexts[i],
                          std::vector<double>(batch.traces[i].begin(),
                                              batch.traces[i].end()));
      }
    }
  }

  result.mean_current = source->mean_current();
  result.diagnostics = source->diagnostics();
  if (options.compute_mtd) {
    result.cpa = mtd.snapshot(options.keep_time_curves);
    result.mtd = mtd.finish();
  } else {
    result.cpa = cpa.snapshot(options.keep_time_curves);
  }
  result.dpa = dpa.snapshot();
  if (st_awake_mtd) {
    result.static_awake = st_awake_mtd->snapshot();
    result.static_awake_mtd = st_awake_mtd->finish();
    result.static_asleep = st_asleep_mtd->snapshot();
    result.static_asleep_mtd = st_asleep_mtd->finish();
  } else if (st_awake) {
    result.static_awake = st_awake->snapshot();
    result.static_asleep = st_asleep->snapshot();
  }
  if (mlpa_mtd) {
    result.mlpa = mlpa_mtd->snapshot();
    result.mlpa_mtd = mlpa_mtd->finish();
  } else if (mlpa) {
    result.mlpa = mlpa->snapshot();
  }
  result.key_rank = result.cpa.key_rank(options.key);
  result.margin = result.cpa.margin(options.key);
  return result;
}

}  // namespace pgmcml::core
