#include "pgmcml/core/ise_experiment.hpp"

#include <algorithm>

#include "pgmcml/core/sbox_unit.hpp"
#include "pgmcml/netlist/logicsim.hpp"
#include "pgmcml/power/kernels.hpp"
#include "pgmcml/power/tracer.hpp"
#include "pgmcml/synth/sleep_tree.hpp"
#include "pgmcml/util/rng.hpp"

namespace pgmcml::core {

using cells::CellLibrary;
using cells::LogicStyle;
using netlist::NetId;

namespace {

/// Input/output net lookup for the mapped S-box ISE.
struct IsePorts {
  std::array<NetId, 32> in{};
  NetId clk = netlist::kNoNet;
  NetId const0 = netlist::kNoNet;
};

IsePorts find_ports(const netlist::Design& d) {
  IsePorts ports;
  ports.in.fill(netlist::kNoNet);
  for (std::size_t i = 0; i < d.inputs().size(); ++i) {
    const std::string& name = d.port_name(i, true);
    if (name == "clk") {
      ports.clk = d.inputs()[i];
    } else if (name == "const0") {
      ports.const0 = d.inputs()[i];
    } else if (name.size() >= 6 && name.rfind("in", 0) == 0) {
      // "inL[B]": lane L, bit B.
      const int lane = name[2] - '0';
      const int bit = std::stoi(name.substr(4, name.size() - 5));
      ports.in[8 * lane + bit] = d.inputs()[i];
    }
  }
  return ports;
}

/// Replays a sequence of operand words through the mapped unit, one clocked
/// operation per `period`, and returns the event stream.
std::vector<netlist::SimEvent> replay_operands(
    const netlist::Design& design, const CellLibrary& lib,
    const std::vector<std::uint32_t>& operands, double t_first, double period) {
  const IsePorts ports = find_ports(design);
  netlist::LogicSim sim(design, &lib);
  if (ports.const0 != netlist::kNoNet) {
    sim.set_input(ports.const0, false, 0.0);
  }
  double t = t_first;
  for (std::uint32_t word : operands) {
    // Operands arrive shortly before the sampling clock edge.
    for (int b = 0; b < 32; ++b) {
      sim.set_input(ports.in[b], (word >> b) & 1, t - 0.3 * period);
    }
    if (ports.clk != netlist::kNoNet) {
      sim.set_input(ports.clk, true, t);
      sim.set_input(ports.clk, false, t + 0.5 * period);
    }
    t += period;
  }
  sim.run_until(t + period);
  return sim.events();
}

}  // namespace

std::vector<IseStyleResult> run_ise_experiment(
    const IseExperimentOptions& options) {
  // --- software run on the CPU model ----------------------------------------
  util::Rng rng(options.seed);
  aes::Key key;
  aes::Block pt;
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.bounded(256));
  for (auto& b : pt) b = static_cast<std::uint8_t>(rng.bounded(256));
  or1k::AesProgramOptions popt;
  popt.use_ise = true;
  popt.blocks = options.blocks;
  popt.idle_spin = options.idle_spin;
  const or1k::AesRun run = or1k::run_aes_program(key, pt, popt);

  const double period = 1.0 / options.clock_hz;
  const double total_time = static_cast<double>(run.cycles) * period;

  // PG awake windows: merge per-ISE-cycle windows with the sleep margin.
  std::vector<std::pair<double, double>> windows;
  for (std::uint64_t c : run.ise_cycle_indices) {
    const double t = static_cast<double>(c) * period;
    windows.emplace_back(t - options.sleep_margin,
                         t + period + options.sleep_margin);
  }
  std::vector<std::pair<double, double>> merged;
  for (const auto& w : windows) {
    if (!merged.empty() && w.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, w.second);
    } else {
      merged.push_back(w);
    }
  }
  double awake_time = 0.0;
  for (const auto& w : merged) awake_time += w.second - w.first;
  awake_time = std::min(awake_time, total_time);

  std::vector<IseStyleResult> results;
  const power::CurrentKernels kernels = power::default_kernels();
  for (const CellLibrary& lib :
       {CellLibrary::cmos90(), CellLibrary::mcml90(), CellLibrary::pgmcml90()}) {
    const synth::MapResult mapped = map_sbox_ise(lib, /*registered=*/true);
    const netlist::Design::Stats stats = mapped.design.stats(lib);

    power::TraceOptions topt;
    topt.seed = options.seed;
    topt.include_noise = false;
    const power::PowerTracer tracer(mapped.design, lib, kernels, topt);

    IseStyleResult r;
    r.style = to_string(lib.style());
    r.cells = stats.cells;
    r.inverters = mapped.inverters;
    r.area = stats.area;
    r.critical_path = stats.critical_path;
    r.duty = run.ise_duty;

    // Automatic sleep insertion (the paper's future work, implemented in
    // synth::insert_sleep_tree): the buffers it adds are why the paper's
    // PG-MCML unit counts more cells than the MCML one (3076 vs 2911).
    if (lib.power_gated()) {
      const synth::SleepTreeResult tree =
          synth::insert_sleep_tree(mapped.design, lib);
      r.cells += tree.buffers;
      r.area += tree.buffer_area;
    }

    switch (lib.style()) {
      case LogicStyle::kCmos: {
        // Leakage floor plus the switched energy of the actual operations.
        const auto events = replay_operands(mapped.design, lib,
                                            run.ise_operand_words, period,
                                            period);
        const double energy = tracer.switched_charge(events) * lib.vdd();
        r.idle_power = tracer.leakage_power();
        r.active_power =
            r.idle_power +
            (run.ise_executions > 0
                 ? energy / (static_cast<double>(run.ise_executions) * period)
                 : 0.0);
        r.avg_power = r.idle_power + energy / total_time;
        break;
      }
      case LogicStyle::kMcml: {
        r.active_power = lib.vdd() * tracer.awake_current();
        r.idle_power = r.active_power;  // cannot sleep
        r.avg_power = r.active_power;
        break;
      }
      case LogicStyle::kPgMcml: {
        r.active_power = lib.vdd() * tracer.awake_current();
        r.idle_power = lib.vdd() * tracer.sleep_current();
        const double sleep_time = total_time - awake_time;
        r.avg_power = (r.active_power * awake_time +
                       r.idle_power * sleep_time) /
                      total_time;
        break;
      }
    }
    results.push_back(r);
  }
  return results;
}

Fig5Waveforms compose_fig5_waveforms(const IseExperimentOptions& options) {
  Fig5Waveforms out;
  out.window = 20e-9;
  const double period = 1.0 / options.clock_hz;
  // One custom-instruction execution at 14.4 ns, as in the paper's plot.
  const double t_exec = 14.4e-9;

  util::Rng rng(options.seed);
  const std::vector<std::uint32_t> operand = {
      static_cast<std::uint32_t>(rng.next_u64())};

  const power::CurrentKernels kernels = power::default_kernels();
  power::TraceOptions topt;
  topt.t_start = 0.0;
  topt.dt = 10e-12;
  topt.samples = static_cast<std::size_t>(out.window / topt.dt) + 1;
  topt.include_noise = false;
  topt.seed = options.seed;

  for (const LogicStyle style : {LogicStyle::kMcml, LogicStyle::kPgMcml}) {
    const CellLibrary lib = style == LogicStyle::kMcml
                                ? CellLibrary::mcml90()
                                : CellLibrary::pgmcml90();
    const synth::MapResult mapped = map_sbox_ise(lib, true);
    const power::PowerTracer tracer(mapped.design, lib, kernels, topt);
    const auto events =
        replay_operands(mapped.design, lib, operand, t_exec, period);

    power::SleepSchedule schedule;
    if (style == LogicStyle::kPgMcml) {
      schedule.awake.push_back(
          {t_exec - options.sleep_margin, t_exec + period});
    }
    const std::vector<double> samples = tracer.trace(events, schedule);
    util::Waveform w;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      w.append(topt.dt * static_cast<double>(i), samples[i]);
    }
    (style == LogicStyle::kMcml ? out.mcml : out.pgmcml) = w;
  }

  out.sleep = util::Waveform({{0.0, 0.0},
                              {t_exec - options.sleep_margin, 0.0},
                              {t_exec - options.sleep_margin + 0.1e-9, 1.0},
                              {t_exec + period, 1.0},
                              {t_exec + period + 0.1e-9, 0.0},
                              {out.window, 0.0}});
  return out;
}

}  // namespace pgmcml::core
