#include "pgmcml/core/aes_core.hpp"

#include <stdexcept>

#include "pgmcml/netlist/logicsim.hpp"
#include "pgmcml/power/kernels.hpp"
#include "pgmcml/power/tracer.hpp"
#include "pgmcml/sca/attack.hpp"
#include "pgmcml/synth/lut.hpp"
#include "pgmcml/util/rng.hpp"

namespace pgmcml::core {

using synth::Lit;
using synth::Module;

namespace {

using Byte = std::array<Lit, 8>;
using State = std::array<Byte, 16>;  // FIPS layout: byte i = row i%4, col i/4

/// xtime in GF(2^8): out = (x << 1) ^ (x7 ? 0x1b : 0).
Byte xtime(Module& m, const Byte& x) {
  Byte out;
  out[0] = x[7];
  out[1] = m.lxor(x[0], x[7]);
  out[2] = x[1];
  out[3] = m.lxor(x[2], x[7]);
  out[4] = m.lxor(x[3], x[7]);
  out[5] = x[4];
  out[6] = x[5];
  out[7] = x[6];
  return out;
}

Byte bxor(Module& m, const Byte& a, const Byte& b) {
  Byte out;
  for (int i = 0; i < 8; ++i) out[i] = m.lxor(a[i], b[i]);
  return out;
}

Byte bmux(Module& m, Lit sel, const Byte& when0, const Byte& when1) {
  Byte out;
  for (int i = 0; i < 8; ++i) out[i] = m.lmux(sel, when0[i], when1[i]);
  return out;
}

State shift_rows(const State& s) {
  State out;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      out[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
    }
  }
  return out;
}

State mix_columns(Module& m, const State& s) {
  State out;
  for (int c = 0; c < 4; ++c) {
    const Byte& a0 = s[4 * c];
    const Byte& a1 = s[4 * c + 1];
    const Byte& a2 = s[4 * c + 2];
    const Byte& a3 = s[4 * c + 3];
    const Byte x0 = xtime(m, a0);
    const Byte x1 = xtime(m, a1);
    const Byte x2 = xtime(m, a2);
    const Byte x3 = xtime(m, a3);
    // b0 = 2a0 ^ 3a1 ^ a2 ^ a3, etc.
    out[4 * c] = bxor(m, bxor(m, x0, bxor(m, x1, a1)), bxor(m, a2, a3));
    out[4 * c + 1] = bxor(m, bxor(m, a0, x1), bxor(m, bxor(m, x2, a2), a3));
    out[4 * c + 2] = bxor(m, bxor(m, a0, a1), bxor(m, x2, bxor(m, x3, a3)));
    out[4 * c + 3] = bxor(m, bxor(m, bxor(m, x0, a0), a1), bxor(m, a2, x3));
  }
  return out;
}

}  // namespace

synth::Module build_aes_core_module() {
  Module m("aes128_core");
  // Input buses.
  State pt;
  State rk;
  for (int b = 0; b < 16; ++b) {
    for (int i = 0; i < 8; ++i) {
      pt[b][i] = m.input("pt[" + std::to_string(8 * b + i) + "]");
    }
  }
  for (int b = 0; b < 16; ++b) {
    for (int i = 0; i < 8; ++i) {
      rk[b][i] = m.input("rk[" + std::to_string(8 * b + i) + "]");
    }
  }
  const Lit load = m.input("load");
  const Lit final_round = m.input("final");

  // State register: declared as enable-less flops whose D we build below.
  // Because the IR is feed-forward (dff(d) requires d first), we model the
  // feedback by building the round function on the *flop outputs*; the
  // trick is to create placeholder flops via dff over a deferred input is
  // not possible, so instead we exploit evaluate()'s state vector: flops
  // read their previous state.  Build order: create flops fed by the round
  // function of the *previous* flop outputs requires the outputs first --
  // resolved by building the round on pseudo-inputs and rewiring.  The
  // clean feed-forward formulation used here: the flop input is a function
  // of the flop's own output, which the Module supports as long as the
  // output literal exists before dff() is called.  So: create one dff per
  // bit with a dummy D first?  Not supported.  Instead we use the standard
  // unrolled-feedback trick: the "state" seen by the round logic is a bus
  // of pseudo-primary inputs st_in[128], and the module exposes the next
  // state as outputs next[128]; the sequencer (run_aes_core / the mapped
  // netlist's flops) closes the loop externally.
  State st;
  for (int b = 0; b < 16; ++b) {
    for (int i = 0; i < 8; ++i) {
      st[b][i] = m.input("st[" + std::to_string(8 * b + i) + "]");
    }
  }

  // Round function on st.
  const std::vector<std::uint8_t> table(aes::sbox().begin(), aes::sbox().end());
  State subbed;
  for (int b = 0; b < 16; ++b) {
    std::vector<Lit> in(st[b].begin(), st[b].end());
    const std::vector<Lit> out = synth::synthesize_lut8(m, in, table);
    for (int i = 0; i < 8; ++i) subbed[b][i] = out[i];
  }
  const State shifted = shift_rows(subbed);
  const State mixed = mix_columns(m, shifted);

  State next;
  for (int b = 0; b < 16; ++b) {
    // final rounds skip MixColumns.
    const Byte round_out = bmux(m, final_round, mixed[b], shifted[b]);
    const Byte with_key = bxor(m, round_out, rk[b]);
    const Byte loaded = bxor(m, pt[b], rk[b]);  // initial AddRoundKey
    next[b] = bmux(m, load, with_key, loaded);
  }

  // Registered state output: flops close the loop at the netlist level; at
  // the IR level we also register them so the mapped design contains the
  // 128 state flops (fed by next, read back through st externally).
  for (int b = 0; b < 16; ++b) {
    for (int i = 0; i < 8; ++i) {
      const Lit q = m.dff(next[b][i]);
      m.output("state[" + std::to_string(8 * b + i) + "]", q);
      m.output("next[" + std::to_string(8 * b + i) + "]", next[b][i]);
    }
  }
  return m;
}

aes::Block run_aes_core(const synth::Module& core, const aes::Block& plaintext,
                        const aes::Key& key) {
  const aes::KeySchedule ks = aes::expand_key(key);

  // Input vector layout: pt[128], rk[128], load, final, st[128].
  std::vector<bool> in(128 + 128 + 2 + 128, false);
  auto set_block = [&](std::size_t base, const std::array<std::uint8_t, 16>& blk) {
    for (int b = 0; b < 16; ++b) {
      for (int i = 0; i < 8; ++i) {
        in[base + 8 * b + i] = (blk[b] >> i) & 1;
      }
    }
  };
  auto get_next = [&](const std::vector<bool>& out) {
    aes::Block blk{};
    for (int b = 0; b < 16; ++b) {
      for (int i = 0; i < 8; ++i) {
        // Outputs alternate state/next per bit: state at 2*k, next at 2*k+1.
        if (out[2 * (8 * b + i) + 1]) {
          blk[b] = static_cast<std::uint8_t>(blk[b] | (1u << i));
        }
      }
    }
    return blk;
  };

  set_block(0, plaintext);
  aes::Block state{};
  // Cycle 0: load with round key 0.
  set_block(128, ks.round_keys[0]);
  in[256] = true;   // load
  in[257] = false;  // final
  set_block(258, state);
  state = get_next(core.evaluate(in));
  // Rounds 1..10.
  for (int round = 1; round <= 10; ++round) {
    set_block(128, ks.round_keys[static_cast<std::size_t>(round)]);
    in[256] = false;
    in[257] = (round == 10);
    set_block(258, state);
    state = get_next(core.evaluate(in));
  }
  return state;
}

synth::MapResult map_aes_core(const cells::CellLibrary& library) {
  const Module m = build_aes_core_module();
  return synth::map_module(m, library);
}

FullCoreCpaResult run_full_core_cpa(const cells::CellLibrary& library,
                                    std::size_t num_traces,
                                    std::uint8_t key_byte,
                                    std::uint64_t seed) {
  const synth::MapResult mapped = map_aes_core(library);
  const netlist::Design& design = mapped.design;

  FullCoreCpaResult result;
  result.cells = design.num_instances();

  // Port lookup by name.
  std::vector<netlist::NetId> st(128, netlist::kNoNet);
  std::vector<netlist::NetId> others;
  for (std::size_t i = 0; i < design.inputs().size(); ++i) {
    const std::string& name = design.port_name(i, true);
    if (name.rfind("st[", 0) == 0) {
      st[std::stoi(name.substr(3, name.size() - 4))] = design.inputs()[i];
    } else {
      others.push_back(design.inputs()[i]);
    }
  }

  power::TraceOptions topt;
  topt.t_start = 0.4e-9;
  topt.dt = 4e-12;
  topt.samples = 700;
  topt.seed = seed;
  const power::PowerTracer tracer(design, library, power::default_kernels(),
                                  topt);

  util::Rng rng(seed);
  sca::TraceSet traces(topt.samples);
  for (std::size_t t = 0; t < num_traces; ++t) {
    // Chosen-plaintext: only byte 0 varies; the rest of the state (and all
    // other ports) stay fixed, so the 15 other S-boxes contribute constant
    // activity rather than algorithmic noise.
    const auto p0 = static_cast<std::uint8_t>(rng.bounded(256));
    const std::uint8_t target_in = static_cast<std::uint8_t>(p0 ^ key_byte);

    netlist::LogicSim sim(design, &library);
    std::vector<std::pair<netlist::NetId, bool>> init;
    for (netlist::NetId n : others) init.emplace_back(n, false);
    for (int b = 0; b < 128; ++b) init.emplace_back(st[b], false);
    sim.apply_and_settle(init);
    sim.clear_events();
    sim.run_until(0.5e-9);

    std::vector<std::pair<netlist::NetId, bool>> stim;
    for (int b = 0; b < 8; ++b) {
      stim.emplace_back(st[b], (target_in >> b) & 1);
    }
    sim.apply_and_settle(stim);
    traces.add(p0, tracer.trace(sim.events(), {}, t));
  }

  const sca::CpaResult cpa = sca::cpa_attack(traces);
  result.key_rank = cpa.key_rank(key_byte);
  result.best_guess = cpa.best_guess;
  result.margin = cpa.margin(key_byte);
  return result;
}

}  // namespace pgmcml::core
