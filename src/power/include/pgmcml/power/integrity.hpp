// Power-integrity analysis of the wake-up event.
//
// Fine-grain power gating concentrates the block's entire tail current into
// a single turn-on edge: the wake inrush.  If the supply grid cannot source
// that di/dt, the rail droops and the first post-wake operations can fail --
// this is why Section 5/6 insists the sleep signal be buffered as a tree
// with a controlled insertion delay (staggering the turn-on).  This module
// quantifies the trade-off: peak inrush current, IR droop on a resistive
// grid model, and the smoothing effect of staggering the sleep tree's leaf
// arrivals.
#pragma once

#include <cstddef>

#include "pgmcml/power/kernels.hpp"
#include "pgmcml/power/tracer.hpp"

namespace pgmcml::power {

struct InrushOptions {
  double grid_resistance = 0.5;  ///< supply-grid + package R [ohm]
  double vdd = 1.2;
  /// Staggering: leaf groups of the sleep tree wake `stagger_step` apart.
  std::size_t stagger_groups = 1;
  double stagger_step = 100e-12;  ///< [s]
  double dt = 5e-12;
  double window = 3e-9;  ///< analysis window after the wake edge [s]
};

struct InrushResult {
  double steady_current = 0.0;  ///< block current once awake [A]
  double peak_current = 0.0;    ///< max during wake [A]
  double peak_droop = 0.0;      ///< peak IR droop [V]
  double droop_fraction = 0.0;  ///< droop / Vdd
  double settle_time = 0.0;     ///< time to within 5% of steady [s]
};

/// Analyzes the wake-up inrush of a gated block with total awake current
/// `block_current`, using the wake kernel's shape.
InrushResult analyze_wake_inrush(const CurrentKernels& kernels,
                                 double block_current,
                                 const InrushOptions& options = {});

}  // namespace pgmcml::power
