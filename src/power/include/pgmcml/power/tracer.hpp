// Block-level supply-current trace composition (the fast-SPICE substitute).
//
// Given a mapped netlist, a cell library (which fixes the logic style's
// power model), and a logic-simulation event stream, the tracer composes the
// block's supply-current waveform on a uniform grid:
//
//   CMOS:     leakage floor + one charge pulse per output toggle.  The pulse
//             charge is the cell's switched charge with per-instance process
//             variation -- the number of pulses tracks the data's Hamming
//             weight/distance, which is precisely the DPA leak.
//   MCML:     per-cell constant Iss (with per-instance mismatch) + a
//             zero-net-area steering transient per toggle + a tiny
//             state-dependent residual (mismatch between the two legs).
//             The residual is data-dependent but essentially random per
//             instance, which is why CPA fails against it.
//   PG-MCML:  the MCML model gated by a sleep schedule, plus wake/sleep
//             transition kernels and the gated-off leakage floor.
//
// Measurement noise is added per sample, emulating the oscilloscope front
// end of a power-analysis setup.
#pragma once

#include <cstdint>
#include <vector>

#include "pgmcml/cells/library.hpp"
#include "pgmcml/netlist/design.hpp"
#include "pgmcml/netlist/logicsim.hpp"
#include "pgmcml/power/kernels.hpp"
#include "pgmcml/util/rng.hpp"

namespace pgmcml::power {

/// Awake windows for power-gated blocks.  Empty = always awake.
struct SleepSchedule {
  struct Window {
    double t_on;
    double t_off;
  };
  std::vector<Window> awake;
  bool always_awake() const { return awake.empty(); }
  bool is_awake(double t) const;
};

struct TraceOptions {
  double t_start = 0.0;
  double dt = 1e-12;            ///< 1 ps resolution, as in Section 6
  std::size_t samples = 1000;
  double noise_sigma = 2e-6;    ///< scope front-end noise per sample [A]
  /// Supply/regulator noise proportional to the flowing static current --
  /// the physical reason a 2 fC switching blip is invisible on a 30 mA
  /// MCML rail but glaring on a near-zero CMOS rail.
  double supply_noise_ratio = 0.0025;
  /// Per-instance static-current mismatch (sigma, relative).
  double mismatch_sigma = 0.01;
  /// Data-dependent residual of an MCML cell: relative imbalance between
  /// the two legs' currents (sigma).  ~0.2 % at the 50 uA point.
  double residual_sigma = 0.002;
  /// Extra switched-charge factor for instances driving primary outputs
  /// (macro pins, fat wires, downstream pipeline registers).
  double output_load_factor = 4.0;
  std::uint64_t seed = 1;
  bool include_noise = true;
};

class PowerTracer {
 public:
  PowerTracer(const netlist::Design& design, const cells::CellLibrary& library,
              const CurrentKernels& kernels, const TraceOptions& options);

  /// Composes the supply-current trace for one logic-sim run.
  /// `events` must be time-sorted (as produced by LogicSim).  `nonce`
  /// decorrelates the measurement noise between acquisitions that share an
  /// identical event stream (e.g. TVLA's fixed-plaintext class).
  std::vector<double> trace(const std::vector<netlist::SimEvent>& events,
                            const SleepSchedule& schedule = {},
                            std::uint64_t nonce = 0) const;

  /// Same, but composes into `out`, recycling its heap buffer: streaming
  /// acquisition reuses one buffer per batch slot instead of allocating a
  /// fresh samples-sized vector for every trace.
  void trace_into(const std::vector<netlist::SimEvent>& events,
                  const SleepSchedule& schedule, std::uint64_t nonce,
                  std::vector<double>& out) const;

  /// Quiescent (DC) supply current of the block holding the state of `sim`
  /// [A] -- the observable of the static-power side channel.  Unlike the
  /// transient floors above, the quiescent current is state-dependent:
  ///   CMOS:     subthreshold leakage differs between output-high (NMOS
  ///             stack leaking) and output-low (PMOS stack leaking) -- the
  ///             asymmetry is systematic across a die, so the block's
  ///             leakage tracks the held state's Hamming weight.
  ///   MCML:     each cell's tail current splits over two never-perfectly-
  ///             matched legs; the imbalance has an instance-random part
  ///             (residual_) plus a small systematic part shared by every
  ///             cell of a layout orientation, so the DC draw also tracks
  ///             the state.
  ///   PG-MCML:  awake behaves like MCML; `awake == false` with a gated
  ///             library returns the state-independent sleep floor -- the
  ///             starvation the static-power attack bench quantifies.
  /// For non-gated libraries `awake` is ignored (there is no sleep state).
  double quiescent_current(const netlist::LogicSim& sim, bool awake) const;

  /// Total static current of the block when awake [A].
  double awake_current() const { return awake_current_; }
  /// Total gated-off leakage current [A].
  double sleep_current() const { return sleep_current_; }
  /// CMOS leakage power floor [W].
  double leakage_power() const { return leakage_power_; }

  /// Average power over a trace [W].
  double average_power(const std::vector<double>& trace) const;

  /// Total charge switched by a CMOS event stream [C] (sum of the rising-
  /// edge kernel charges; zero for MCML styles whose events only steer Iss).
  double switched_charge(const std::vector<netlist::SimEvent>& events) const;

  const TraceOptions& options() const { return options_; }

 private:
  const netlist::Design& design_;
  cells::CellLibrary library_;  ///< by value: tracers outlive temporaries
  CurrentKernels kernels_;
  TraceOptions options_;
  // Per-instance frozen process variation.
  std::vector<double> static_scale_;    ///< 1 + mismatch
  std::vector<double> charge_scale_;    ///< CMOS pulse charge variation
  std::vector<double> residual_;        ///< MCML leg imbalance (signed)
  double awake_current_ = 0.0;
  double sleep_current_ = 0.0;
  double leakage_power_ = 0.0;
};

}  // namespace pgmcml::power
