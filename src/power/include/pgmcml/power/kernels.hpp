// Per-cell supply-current kernels.
//
// The paper runs Synopsys Nanosim (a table-driven fast-SPICE) on the post-
// P&R netlist to get block-level current waveforms.  We reproduce that
// architecture: each cell's contribution to the supply current is a small
// characterized waveform ("kernel"), and the block trace is the composition
// of kernels over the logic simulator's event stream.  Kernels can be
// analytic defaults or extracted from our own transistor-level engine
// (kernels_from_spice), closing the loop with src/spice exactly the way
// Nanosim's device tables close the loop with SPICE.
#pragma once

#include "pgmcml/mcml/design.hpp"
#include "pgmcml/spice/solve_error.hpp"
#include "pgmcml/util/waveform.hpp"

namespace pgmcml::power {

struct CurrentKernels {
  /// CMOS output toggle: a current pulse whose integral is 1 C (scaled by
  /// the cell's switched charge Q = E_toggle / Vdd at composition time).
  util::Waveform cmos_toggle;
  /// MCML switching transient: the brief supply-current disturbance while
  /// the tail current steers between legs.  Normalized to the tail current
  /// (value 1.0 = Iss); net area ~0 -- this is the property that defeats DPA.
  util::Waveform mcml_switch;
  /// PG-MCML wake-up: supply current ramping 0 -> 1 (x Iss) when the sleep
  /// transistor turns on, including the inrush that recharges the cell.
  util::Waveform pg_wake;
  /// PG-MCML sleep entry: 1 -> 0 (x Iss) decay.
  util::Waveform pg_sleep;
};

/// Analytic kernel shapes with time constants matching the characterized
/// 50 uA / 0.4 V design point.
CurrentKernels default_kernels();

/// Extracts the kernels from transistor-level simulations of the buffer
/// cell at the given design point (switch transient from an input toggle,
/// wake/sleep from a sleep-pulse testbench).  A failed extraction is retried
/// once with tightened solver options and otherwise falls back to the
/// analytic default shape for that kernel.  With `diag` supplied, every
/// attempt/retry/skip is recorded there and a bias failure degrades to the
/// analytic defaults instead of throwing; without it a bias failure throws
/// (the legacy contract).
CurrentKernels kernels_from_spice(const mcml::McmlDesign& design,
                                  spice::FlowDiagnostics* diag = nullptr);

}  // namespace pgmcml::power
