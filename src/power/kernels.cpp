#include "pgmcml/power/kernels.hpp"

#include <stdexcept>

#include "pgmcml/mcml/bias.hpp"
#include "pgmcml/mcml/characterize.hpp"
#include "pgmcml/util/units.hpp"

namespace pgmcml::power {

using util::ps;
using util::Waveform;

CurrentKernels default_kernels() {
  CurrentKernels k;
  // CMOS toggle: triangular pulse, 80 ps base, unit charge (area = 1).
  // peak = 2 * Q / width with Q = 1.
  const double width = 80 * ps;
  k.cmos_toggle = Waveform({{0.0, 0.0},
                            {0.5 * width, 2.0 / width},
                            {width, 0.0}});
  // MCML steering transient: small dip then overshoot, net area ~zero,
  // ~2 % of Iss peak over ~60 ps.  The tail current source's high output
  // impedance keeps the supply disturbance this small -- the property that
  // makes MCML DPA-resistant.
  k.mcml_switch = Waveform({{0.0, 0.0},
                            {10 * ps, -0.02},
                            {30 * ps, 0.02},
                            {60 * ps, 0.0}});
  // Wake: tail current ramps up in ~200 ps with a 15 % inrush overshoot
  // (recharging the output nodes through the loads).
  k.pg_wake = Waveform({{0.0, 0.0},
                        {80 * ps, 0.7},
                        {150 * ps, 1.15},
                        {300 * ps, 1.0}});
  // Sleep: decay to (almost) zero in ~150 ps.
  k.pg_sleep = Waveform({{0.0, 1.0}, {60 * ps, 0.25}, {150 * ps, 0.0}});
  return k;
}

namespace {

/// Retry-once policy for kernel-extraction transients: first attempt at the
/// standard options, one retry tightened, outcome recorded in `diag` when
/// the caller provided one.
spice::TranResult run_kernel_bench(mcml::McmlTestbench& bench,
                                   const std::string& stage,
                                   spice::FlowDiagnostics* diag) {
  if (diag != nullptr) diag->record_attempt();
  spice::TranResult tr = bench.run();
  if (diag != nullptr) diag->engine.merge(tr.stats);
  if (tr.ok || diag == nullptr) return tr;
  diag->record_retry(stage, tr.failure.describe());
  tr = bench.run(/*tightened=*/true);
  diag->engine.merge(tr.stats);
  if (tr.ok) {
    diag->record_recovery(stage);
  } else {
    diag->record_skip(stage, tr.failure.describe());
  }
  return tr;
}

}  // namespace

CurrentKernels kernels_from_spice(const mcml::McmlDesign& base,
                                  spice::FlowDiagnostics* diag) {
  CurrentKernels k = default_kernels();  // fallback shapes

  mcml::McmlDesign design = base;
  const mcml::BiasResult bias = mcml::solve_bias(design);
  if (!bias.ok) {
    if (diag != nullptr) {
      // Degrade to the analytic defaults but leave a record: the flow keeps
      // running on the fallback shapes instead of aborting.
      diag->record_attempt();
      diag->record_skip("kernels:bias", "bias failed: " + bias.error);
      return k;
    }
    throw std::runtime_error("kernels_from_spice: bias failed: " + bias.error);
  }
  const double iss = design.eff_iss();

  // --- switching transient: supply current around an input edge ------------
  {
    mcml::TestbenchOptions opt;
    opt.fanout = 1;
    mcml::McmlTestbench bench(mcml::CellKind::kBuf, design, opt);
    const spice::TranResult tr = run_kernel_bench(bench, "kernels:switch", diag);
    if (tr.ok) {
      const util::Waveform supply = bench.supply_current(tr);
      // DC level just before the 4 ns edge; transient window after it.
      const double dc = supply.average(3.0e-9, 3.9e-9);
      Waveform blip;
      const double t_edge = 4.0e-9;
      for (double t = 0.0; t <= 300 * ps; t += 5 * ps) {
        blip.append(t, (supply.value_at(t_edge + t) - dc) / iss);
      }
      k.mcml_switch = blip;
    }
  }

  // --- wake / sleep transients ----------------------------------------------
  if (design.power_gated()) {
    mcml::TestbenchOptions opt;
    opt.fanout = 1;
    opt.sleep_pulse = true;
    opt.sleep_rise_time = 1e-9;
    mcml::McmlTestbench bench(mcml::CellKind::kBuf, design, opt);
    const spice::TranResult tr = run_kernel_bench(bench, "kernels:wake", diag);
    if (tr.ok) {
      const util::Waveform supply = bench.supply_current(tr);
      Waveform wake;
      for (double t = 0.0; t <= 600 * ps; t += 10 * ps) {
        wake.append(t, supply.value_at(1e-9 + t) / iss);
      }
      k.pg_wake = wake;
    }
  }
  return k;
}

}  // namespace pgmcml::power
