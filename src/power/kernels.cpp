#include "pgmcml/power/kernels.hpp"

#include <optional>
#include <stdexcept>

#include "pgmcml/cache/cache.hpp"
#include "pgmcml/cache/key.hpp"
#include "pgmcml/mcml/bias.hpp"
#include "pgmcml/mcml/characterize.hpp"
#include "pgmcml/obs/json.hpp"
#include "pgmcml/util/units.hpp"

namespace pgmcml::power {

using util::ps;
using util::Waveform;

CurrentKernels default_kernels() {
  CurrentKernels k;
  // CMOS toggle: triangular pulse, 80 ps base, unit charge (area = 1).
  // peak = 2 * Q / width with Q = 1.
  const double width = 80 * ps;
  k.cmos_toggle = Waveform({{0.0, 0.0},
                            {0.5 * width, 2.0 / width},
                            {width, 0.0}});
  // MCML steering transient: small dip then overshoot, net area ~zero,
  // ~2 % of Iss peak over ~60 ps.  The tail current source's high output
  // impedance keeps the supply disturbance this small -- the property that
  // makes MCML DPA-resistant.
  k.mcml_switch = Waveform({{0.0, 0.0},
                            {10 * ps, -0.02},
                            {30 * ps, 0.02},
                            {60 * ps, 0.0}});
  // Wake: tail current ramps up in ~200 ps with a 15 % inrush overshoot
  // (recharging the output nodes through the loads).
  k.pg_wake = Waveform({{0.0, 0.0},
                        {80 * ps, 0.7},
                        {150 * ps, 1.15},
                        {300 * ps, 1.0}});
  // Sleep: decay to (almost) zero in ~150 ps.
  k.pg_sleep = Waveform({{0.0, 1.0}, {60 * ps, 0.25}, {150 * ps, 0.0}});
  return k;
}

namespace {

/// Retry-once policy for kernel-extraction transients: first attempt at the
/// standard options, one retry tightened, outcome recorded in `diag` when
/// the caller provided one.
spice::TranResult run_kernel_bench(mcml::McmlTestbench& bench,
                                   const std::string& stage,
                                   spice::FlowDiagnostics* diag) {
  if (diag != nullptr) diag->record_attempt();
  spice::TranResult tr = bench.run();
  if (diag != nullptr) diag->engine.merge(tr.stats);
  if (tr.ok || diag == nullptr) return tr;
  diag->record_retry(stage, tr.failure.describe());
  tr = bench.run(/*tightened=*/true);
  diag->engine.merge(tr.stats);
  if (tr.ok) {
    diag->record_recovery(stage);
  } else {
    diag->record_skip(stage, tr.failure.describe());
  }
  return tr;
}

obs::json::Value waveform_to_json(const util::Waveform& w) {
  obs::json::Array pts;
  pts.reserve(w.size() * 2);
  for (const util::Waveform::Point& p : w.points()) {
    pts.emplace_back(p.t);
    pts.emplace_back(p.v);
  }
  return obs::json::Value(std::move(pts));
}

util::Waveform waveform_from_json(const obs::json::Value& v) {
  const obs::json::Array& pts = v.as_array();
  if (pts.size() % 2 != 0) {
    throw std::runtime_error("waveform array has odd length");
  }
  util::Waveform w;
  for (std::size_t i = 0; i < pts.size(); i += 2) {
    w.append(pts[i].as_number(), pts[i + 1].as_number());
  }
  return w;
}

/// Cache payload for kernels_from_spice: the four kernels plus the local
/// diagnostics delta this call produced, so a warm hit can replay the same
/// record into the caller's FlowDiagnostics.
obs::json::Value kernels_to_json(const CurrentKernels& k,
                                 const spice::FlowDiagnostics& local_diag) {
  obs::json::Object o;
  o.emplace_back("cmos_toggle", waveform_to_json(k.cmos_toggle));
  o.emplace_back("mcml_switch", waveform_to_json(k.mcml_switch));
  o.emplace_back("pg_wake", waveform_to_json(k.pg_wake));
  o.emplace_back("pg_sleep", waveform_to_json(k.pg_sleep));
  o.emplace_back("diagnostics", local_diag.to_json_value());
  return obs::json::Value(std::move(o));
}

std::optional<CurrentKernels> kernels_from_json(
    const obs::json::Value& v, spice::FlowDiagnostics* diag) {
  if (!v.is_object() || v.find("mcml_switch") == nullptr) return std::nullopt;
  try {
    CurrentKernels k;
    k.cmos_toggle = waveform_from_json(v.at("cmos_toggle"));
    k.mcml_switch = waveform_from_json(v.at("mcml_switch"));
    k.pg_wake = waveform_from_json(v.at("pg_wake"));
    k.pg_sleep = waveform_from_json(v.at("pg_sleep"));
    if (diag != nullptr) {
      diag->merge(spice::FlowDiagnostics::from_json_value(v.at("diagnostics")));
    }
    return k;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

CurrentKernels kernels_from_spice_uncached(const mcml::McmlDesign& base,
                                           spice::FlowDiagnostics* diag) {
  CurrentKernels k = default_kernels();  // fallback shapes

  mcml::McmlDesign design = base;
  const mcml::BiasResult bias = mcml::solve_bias(design);
  if (!bias.ok) {
    if (diag != nullptr) {
      // Degrade to the analytic defaults but leave a record: the flow keeps
      // running on the fallback shapes instead of aborting.
      diag->record_attempt();
      diag->record_skip("kernels:bias", "bias failed: " + bias.error);
      return k;
    }
    throw std::runtime_error("kernels_from_spice: bias failed: " + bias.error);
  }
  const double iss = design.eff_iss();

  // --- switching transient: supply current around an input edge ------------
  {
    mcml::TestbenchOptions opt;
    opt.fanout = 1;
    mcml::McmlTestbench bench(mcml::CellKind::kBuf, design, opt);
    const spice::TranResult tr = run_kernel_bench(bench, "kernels:switch", diag);
    if (tr.ok) {
      const util::Waveform supply = bench.supply_current(tr);
      // DC level just before the 4 ns edge; transient window after it.
      const double dc = supply.average(3.0e-9, 3.9e-9);
      Waveform blip;
      const double t_edge = 4.0e-9;
      for (double t = 0.0; t <= 300 * ps; t += 5 * ps) {
        blip.append(t, (supply.value_at(t_edge + t) - dc) / iss);
      }
      k.mcml_switch = blip;
    }
  }

  // --- wake / sleep transients ----------------------------------------------
  if (design.power_gated()) {
    mcml::TestbenchOptions opt;
    opt.fanout = 1;
    opt.sleep_pulse = true;
    opt.sleep_rise_time = 1e-9;
    mcml::McmlTestbench bench(mcml::CellKind::kBuf, design, opt);
    const spice::TranResult tr = run_kernel_bench(bench, "kernels:wake", diag);
    if (tr.ok) {
      const util::Waveform supply = bench.supply_current(tr);
      Waveform wake;
      for (double t = 0.0; t <= 600 * ps; t += 10 * ps) {
        wake.append(t, supply.value_at(1e-9 + t) / iss);
      }
      k.pg_wake = wake;
    }
  }
  return k;
}

}  // namespace

CurrentKernels kernels_from_spice(const mcml::McmlDesign& base,
                                  spice::FlowDiagnostics* diag) {
  cache::ResultCache& rc = cache::ResultCache::global();
  if (!rc.enabled() || base.mismatch_rng != nullptr) {
    return kernels_from_spice_uncached(base, diag);
  }

  // The two legacy contracts differ observably (with diag: bias failures
  // degrade; without: they throw), so the diag mode is part of the key.
  cache::KeyBuilder kb("power.kernels_from_spice");
  mcml::add_design_to_key(kb, base);
  kb.add("with_diag", diag != nullptr);
  const cache::CacheKey key = kb.key();

  if (std::optional<obs::json::Value> hit = rc.get(key)) {
    if (std::optional<CurrentKernels> k = kernels_from_json(*hit, diag)) {
      return *std::move(k);
    }
  }

  // Extract into a local diagnostics object so the payload carries exactly
  // this call's delta; merge it into the caller's afterwards.
  spice::FlowDiagnostics local;
  CurrentKernels k =
      kernels_from_spice_uncached(base, diag != nullptr ? &local : nullptr);
  rc.put(key, kernels_to_json(k, local));
  if (diag != nullptr) diag->merge(local);
  return k;
}

}  // namespace pgmcml::power
