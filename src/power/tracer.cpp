#include "pgmcml/power/tracer.hpp"

#include <algorithm>

#include "pgmcml/util/stats.hpp"

namespace pgmcml::power {

using cells::LogicStyle;
using netlist::InstId;
using netlist::SimEvent;
using util::GridAccumulator;

bool SleepSchedule::is_awake(double t) const {
  if (always_awake()) return true;
  for (const Window& w : awake) {
    if (t >= w.t_on && t < w.t_off) return true;
  }
  return false;
}

PowerTracer::PowerTracer(const netlist::Design& design,
                         const cells::CellLibrary& library,
                         const CurrentKernels& kernels,
                         const TraceOptions& options)
    : design_(design), library_(library), kernels_(kernels), options_(options) {
  util::Rng rng(options.seed ^ 0xc0ffee);
  const std::size_t n = design.num_instances();
  static_scale_.resize(n);
  charge_scale_.resize(n);
  residual_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    static_scale_[i] =
        std::max(0.5, rng.gaussian(1.0, options.mismatch_sigma));
    charge_scale_[i] =
        std::max(0.3, rng.gaussian(1.0, 3.0 * options.mismatch_sigma));
    residual_[i] = rng.gaussian(0.0, options.residual_sigma);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto& cell = library.cell(design.instance(static_cast<InstId>(i)).kind);
    awake_current_ += cell.static_current * static_scale_[i];
    sleep_current_ += cell.sleep_current * static_scale_[i];
    leakage_power_ += cell.leakage_power * static_scale_[i];
  }

  // Switched charge scales with the driven load: count each instance's
  // fanout (reader pins on its output nets) -- high-fanout nets carry
  // proportionally more capacitance.
  std::vector<std::size_t> fanout_count(design.num_nets(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& inst = design.instance(static_cast<InstId>(i));
    for (netlist::NetId in : inst.inputs) ++fanout_count[in];
    if (inst.clk != netlist::kNoNet) ++fanout_count[inst.clk];
    if (inst.ctrl != netlist::kNoNet) ++fanout_count[inst.ctrl];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto& inst = design.instance(static_cast<InstId>(i));
    std::size_t readers = 0;
    for (netlist::NetId out : inst.outputs) readers += fanout_count[out];
    charge_scale_[i] *=
        0.4 + 0.6 * static_cast<double>(std::max<std::size_t>(readers, 1));
  }

  // Instances driving primary outputs additionally see the macro's pin/wire
  // load on top of their cell-internal charge.
  std::vector<bool> drives_output(n, false);
  const auto driver = design.driver_map();
  for (netlist::NetId out : design.outputs()) {
    if (driver[out] >= 0) drives_output[driver[out]] = true;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (drives_output[i]) charge_scale_[i] *= options.output_load_factor;
  }
}

std::vector<double> PowerTracer::trace(const std::vector<SimEvent>& events,
                                       const SleepSchedule& schedule,
                                       std::uint64_t nonce) const {
  std::vector<double> out;
  trace_into(events, schedule, nonce, out);
  return out;
}

void PowerTracer::trace_into(const std::vector<SimEvent>& events,
                             const SleepSchedule& schedule,
                             std::uint64_t nonce,
                             std::vector<double>& out) const {
  const double t0 = options_.t_start;
  const double t_end =
      t0 + options_.dt * static_cast<double>(options_.samples - 1);
  GridAccumulator acc(t0, options_.dt, options_.samples, std::move(out));
  const LogicStyle style = library_.style();

  // --- static floors ---------------------------------------------------------
  if (style == LogicStyle::kCmos) {
    acc.add_level(t0, t_end + options_.dt, leakage_power_ / library_.vdd());
  } else if (style == LogicStyle::kMcml || schedule.always_awake()) {
    acc.add_level(t0, t_end + options_.dt, awake_current_);
  } else {
    // PG-MCML with a sleep schedule: leakage floor everywhere, full current
    // inside awake windows, transition kernels at the boundaries.
    acc.add_level(t0, t_end + options_.dt, sleep_current_);
    for (const SleepSchedule::Window& w : schedule.awake) {
      const double wake_end = w.t_on + kernels_.pg_wake.t_end();
      acc.add_kernel(w.t_on, kernels_.pg_wake, awake_current_);
      if (wake_end < w.t_off) {
        acc.add_level(wake_end, w.t_off, awake_current_);
      }
      acc.add_kernel(w.t_off, kernels_.pg_sleep, awake_current_);
    }
  }

  // --- per-event contributions ----------------------------------------------
  for (const SimEvent& ev : events) {
    if (ev.driver < 0) continue;  // primary-input edges carry no supply load
    const auto& inst = design_.instance(ev.driver);
    const auto& cell = library_.cell(inst.kind);
    if (style == LogicStyle::kCmos) {
      // Only rising output transitions draw charge from the supply (falling
      // edges discharge the load into ground) -- this asymmetry is the
      // physical root of the CMOS Hamming-weight leak.
      if (!ev.value) continue;
      const double q =
          cell.switch_energy / library_.vdd() * charge_scale_[ev.driver];
      acc.add_kernel(ev.time, kernels_.cmos_toggle, q);
    } else {
      if (!schedule.is_awake(ev.time)) continue;  // gated cells are silent
      const double iss = cell.static_current * static_scale_[ev.driver];
      acc.add_kernel(ev.time, kernels_.mcml_switch, iss);
      // State-dependent residual: the two legs of a real differential cell
      // are never perfectly matched, so the static current depends slightly
      // on which leg conducts.  This is the (tiny, instance-random) data
      // dependence that remains in MCML.
      const double delta = iss * residual_[ev.driver];
      acc.add_level(ev.time, t_end + options_.dt, ev.value ? delta : -delta);
    }
  }

  out = acc.take();
  if (options_.include_noise &&
      (options_.noise_sigma > 0.0 || options_.supply_noise_ratio > 0.0)) {
    // Fresh noise per trace, seeded from the event stream so repeated calls
    // with different data see independent noise.
    util::Rng noise(options_.seed * 0x9e3779b97f4a7c15ULL + events.size() +
                    nonce * 0xd1b54a32d192ed03ULL +
                    (events.empty() ? 0 : static_cast<std::uint64_t>(
                                              events.back().time * 1e15)));
    for (std::size_t i = 0; i < out.size(); ++i) {
      // Regulator/thermal noise grows with the static current flowing at
      // that instant: the floor of the style (and sleep state) at play.
      double floor_current = 0.0;
      if (style == LogicStyle::kCmos) {
        floor_current = leakage_power_ / library_.vdd();
      } else if (schedule.is_awake(acc.time_of(i))) {
        floor_current = awake_current_;
      } else {
        floor_current = sleep_current_;
      }
      const double sigma =
          options_.noise_sigma + options_.supply_noise_ratio * floor_current;
      out[i] += noise.gaussian(0.0, sigma);
    }
  }
}

namespace {

/// Systematic state dependence of the quiescent current, relative to each
/// instance's static floor.  Both are DIE-WIDE constants, not per-instance
/// draws: a per-instance random sign would average the block-level signal
/// toward zero, while the physical effects they model are shared -- CMOS
/// NMOS-vs-PMOS subthreshold leakage asymmetry tracks the global process
/// corner, and MCML leg imbalance has a common layout-orientation component
/// on top of the per-instance residual_.  Magnitudes are calibrated against
/// the transistor-level state-leakage measurement
/// (mcml::measure_state_leakage), which shows the same ordering.
constexpr double kCmosStateLeakAsym = 0.35;
constexpr double kMcmlSystematicImbalance = 0.006;

}  // namespace

double PowerTracer::quiescent_current(const netlist::LogicSim& sim,
                                      bool awake) const {
  const LogicStyle style = library_.style();
  if (!awake && library_.power_gated()) {
    // Gated off: the sleep devices cut the pairs from the rails, leaving a
    // state-independent leakage floor.  This is the quantitative form of
    // the paper's power-gating argument -- nothing here depends on sim.
    return sleep_current_;
  }
  double current = 0.0;
  const std::size_t n = design_.num_instances();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& inst = design_.instance(static_cast<InstId>(i));
    const auto& cell = library_.cell(inst.kind);
    const bool state = !inst.outputs.empty() && sim.value(inst.outputs[0]);
    const double sign = state ? 1.0 : -1.0;
    if (style == LogicStyle::kCmos) {
      const double base =
          cell.leakage_power / library_.vdd() * static_scale_[i];
      current += base * (1.0 + kCmosStateLeakAsym * sign);
    } else {
      const double iss = cell.static_current * static_scale_[i];
      current += iss * (1.0 + (residual_[i] + kMcmlSystematicImbalance) * sign);
    }
  }
  return current;
}

double PowerTracer::average_power(const std::vector<double>& trace) const {
  return util::mean(trace) * library_.vdd();
}

double PowerTracer::switched_charge(
    const std::vector<netlist::SimEvent>& events) const {
  if (library_.style() != cells::LogicStyle::kCmos) return 0.0;
  double q = 0.0;
  for (const netlist::SimEvent& ev : events) {
    if (ev.driver < 0 || !ev.value) continue;
    q += library_.cell(design_.instance(ev.driver).kind).switch_energy /
         library_.vdd() * charge_scale_[ev.driver];
  }
  return q;
}

}  // namespace pgmcml::power
