#include "pgmcml/power/integrity.hpp"

#include <algorithm>
#include <cmath>

#include "pgmcml/util/waveform.hpp"

namespace pgmcml::power {

InrushResult analyze_wake_inrush(const CurrentKernels& kernels,
                                 double block_current,
                                 const InrushOptions& options) {
  InrushResult result;
  result.steady_current = block_current;
  if (block_current <= 0.0 || options.stagger_groups == 0) return result;

  // Compose the wake current: the block's cells split into `stagger_groups`
  // equal groups whose sleep signals arrive `stagger_step` apart (the sleep
  // tree's leaf staggering).
  const std::size_t n =
      static_cast<std::size_t>(options.window / options.dt) + 1;
  util::GridAccumulator acc(0.0, options.dt, n);
  const double group_current =
      block_current / static_cast<double>(options.stagger_groups);
  for (std::size_t g = 0; g < options.stagger_groups; ++g) {
    const double t_on = static_cast<double>(g) * options.stagger_step;
    acc.add_kernel(t_on, kernels.pg_wake, group_current);
    // After the wake transient the group settles at its steady share.
    acc.add_level(t_on + kernels.pg_wake.t_end() + options.dt,
                  options.window + options.dt, group_current);
  }

  const std::vector<double>& i = acc.values();
  for (double v : i) result.peak_current = std::max(result.peak_current, v);
  result.peak_droop = result.peak_current * options.grid_resistance;
  result.droop_fraction = result.peak_droop / options.vdd;

  // Settling: last time the current is outside +-5% of steady.
  result.settle_time = 0.0;
  for (std::size_t k = 0; k < i.size(); ++k) {
    if (std::fabs(i[k] - block_current) > 0.05 * block_current) {
      result.settle_time = options.dt * static_cast<double>(k);
    }
  }
  return result;
}

}  // namespace pgmcml::power
