#include "pgmcml/obs/obs.hpp"

#include <cmath>

namespace pgmcml::obs {

namespace {

/// Lock-free min/max update via CAS (relaxed: the exact interleaving never
/// changes the extremum).
void atomic_min(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t histogram_bucket(double value) {
  if (!std::isfinite(value) || value <= 0.0) return 0;
  const int exponent = std::ilogb(value);  // floor(log2(value))
  const long index = static_cast<long>(exponent) + 31;
  if (index < 0) return 0;
  if (index >= static_cast<long>(kHistogramBuckets)) {
    return kHistogramBuckets - 1;
  }
  return static_cast<std::size_t>(index);
}

void HistogramData::merge(const HistogramData& other) {
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
}

std::uint64_t Snapshot::counter(std::string_view name) const {
  const auto it = counters.find(std::string(name));
  return it != counters.end() ? it->second : 0;
}

void Snapshot::merge(const Snapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, data] : other.histograms) {
    histograms[name].merge(data);
  }
}

json::Value Snapshot::to_json() const {
  json::Object counters_obj;
  for (const auto& [name, value] : counters) {
    counters_obj.emplace_back(name, json::Value(value));
  }
  json::Object histograms_obj;
  for (const auto& [name, data] : histograms) {
    json::Object h;
    h.emplace_back("count", json::Value(data.count));
    h.emplace_back("sum", json::Value(data.sum));
    if (data.count > 0) {
      h.emplace_back("min", json::Value(data.min));
      h.emplace_back("max", json::Value(data.max));
    }
    json::Array sparse;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (data.buckets[i] == 0) continue;
      sparse.push_back(json::Value(
          json::Array{json::Value(i), json::Value(data.buckets[i])}));
    }
    h.emplace_back("buckets", json::Value(std::move(sparse)));
    histograms_obj.emplace_back(name, json::Value(std::move(h)));
  }
  json::Object root;
  root.emplace_back("counters", json::Value(std::move(counters_obj)));
  root.emplace_back("histograms", json::Value(std::move(histograms_obj)));
  return json::Value(std::move(root));
}

std::string Snapshot::to_json_string() const { return to_json().dump(); }

Snapshot Snapshot::from_json(const json::Value& v) {
  Snapshot snap;
  if (const json::Value* c = v.find("counters")) {
    for (const auto& [name, value] : c->as_object()) {
      snap.counters[name] = static_cast<std::uint64_t>(value.as_number());
    }
  }
  if (const json::Value* hs = v.find("histograms")) {
    for (const auto& [name, h] : hs->as_object()) {
      HistogramData data;
      data.count = static_cast<std::uint64_t>(h.number_or("count", 0.0));
      data.sum = h.number_or("sum", 0.0);
      if (data.count > 0) {
        data.min = h.number_or("min", 0.0);
        data.max = h.number_or("max", 0.0);
      }
      if (const json::Value* sparse = h.find("buckets")) {
        for (const json::Value& entry : sparse->as_array()) {
          const json::Array& pair = entry.as_array();
          if (pair.size() != 2) {
            throw std::runtime_error("obs: malformed histogram bucket entry");
          }
          const auto index = static_cast<std::size_t>(pair[0].as_number());
          if (index >= kHistogramBuckets) {
            throw std::runtime_error("obs: histogram bucket out of range");
          }
          data.buckets[index] =
              static_cast<std::uint64_t>(pair[1].as_number());
        }
      }
      snap.histograms[name] = data;
    }
  }
  return snap;
}

// ---------------------------------------------------------------------------
// Registry

struct Histogram::Cell {
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};

  void reset() {
    count.store(0, std::memory_order_relaxed);
    sum.store(0.0, std::memory_order_relaxed);
    min.store(std::numeric_limits<double>::infinity(),
              std::memory_order_relaxed);
    max.store(-std::numeric_limits<double>::infinity(),
              std::memory_order_relaxed);
    for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
  }

  HistogramData data() const {
    HistogramData d;
    d.count = count.load(std::memory_order_relaxed);
    d.sum = sum.load(std::memory_order_relaxed);
    d.min = min.load(std::memory_order_relaxed);
    d.max = max.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      d.buckets[i] = buckets[i].load(std::memory_order_relaxed);
    }
    return d;
  }
};

void Histogram::observe(double value) {
  if (cell_ == nullptr) return;
  cell_->count.fetch_add(1, std::memory_order_relaxed);
  cell_->buckets[histogram_bucket(value)].fetch_add(
      1, std::memory_order_relaxed);
  if (!std::isfinite(value)) return;
  cell_->sum.fetch_add(value, std::memory_order_relaxed);
  atomic_min(cell_->min, value);
  atomic_max(cell_->max, value);
}

struct Registry::Impl {
  mutable std::mutex mu;
  // unique_ptr cells: handle addresses stay stable across map rehash/insert.
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>,
           std::less<>>
      counters;
  std::map<std::string, std::unique_ptr<Histogram::Cell>, std::less<>>
      histograms;
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

Counter Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) {
    it = impl_->counters
             .emplace(std::string(name),
                      std::make_unique<std::atomic<std::uint64_t>>(0))
             .first;
  }
  return Counter(it->second.get());
}

Histogram Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->histograms.find(name);
  if (it == impl_->histograms.end()) {
    it = impl_->histograms
             .emplace(std::string(name), std::make_unique<Histogram::Cell>())
             .first;
  }
  return Histogram(it->second.get());
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Snapshot snap;
  for (const auto& [name, cell] : impl_->counters) {
    snap.counters[name] = cell->load(std::memory_order_relaxed);
  }
  for (const auto& [name, cell] : impl_->histograms) {
    snap.histograms[name] = cell->data();
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, cell] : impl_->counters) {
    cell->store(0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : impl_->histograms) cell->reset();
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

// ---------------------------------------------------------------------------
// ScopedTimer

namespace {
thread_local std::string tl_span_path;
}  // namespace

ScopedTimer::ScopedTimer(std::string_view name, Registry& registry)
    : registry_(&registry),
      prev_length_(tl_span_path.size()),
      start_(std::chrono::steady_clock::now()) {
  if (!tl_span_path.empty()) tl_span_path += '/';
  tl_span_path += name;
}

ScopedTimer::~ScopedTimer() {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const double seconds = std::chrono::duration<double>(elapsed).count();
  registry_->histogram("time/" + tl_span_path).observe(seconds);
  tl_span_path.resize(prev_length_);
}

std::string ScopedTimer::current_path() { return tl_span_path; }

}  // namespace pgmcml::obs
