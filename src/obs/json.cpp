#include "pgmcml/obs/json.hpp"

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pgmcml::obs::json {

namespace {

[[noreturn]] void type_error(const char* want) {
  throw std::runtime_error(std::string("json: value is not a ") + want);
}

/// Recursive-descent parser over a string_view with a depth cap (a hostile
/// "[[[[..." must become a ParseError, not a stack overflow).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(what, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Value(nullptr);
      default: return parse_number();
    }
  }

  Value parse_object(int depth) {
    expect('{');
    Object obj;
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      // Configs are untrusted external input: a document that binds one key
      // twice is ambiguous (find() would silently return the first binding,
      // hiding the second), so it is rejected, not resolved.
      for (const auto& [existing, unused] : obj) {
        if (existing == key) fail("duplicate object key '" + key + "'");
      }
      expect(':');
      obj.emplace_back(std::move(key), parse_value(depth + 1));
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Value(std::move(obj));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value parse_array(int depth) {
    expect('[');
    Array arr;
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value(depth + 1));
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Value(std::move(arr));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_codepoint(out, parse_hex4()); break;
        default: fail("invalid escape");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("unterminated \\u escape");
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return cp;
  }

  /// UTF-8 encoding of one BMP codepoint (surrogate pairs are combined when
  /// both halves are present; a lone surrogate becomes U+FFFD).
  void append_codepoint(std::string& out, unsigned cp) {
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (text_.substr(pos_, 2) == "\\u") {
        pos_ += 2;
        const unsigned lo = parse_hex4();
        if (lo >= 0xDC00 && lo <= 0xDFFF) {
          cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
        } else {
          cp = 0xFFFD;
        }
      } else {
        cp = 0xFFFD;
      }
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      cp = 0xFFFD;
    }
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("invalid number");
    }
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no Inf/NaN; null is the conventional stand-in
    return;
  }
  char buf[32];
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", d);
  }
  out += buf;
}

}  // namespace

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

bool Value::as_bool() const {
  if (!is_bool()) type_error("bool");
  return std::get<bool>(v_);
}

double Value::as_number() const {
  if (!is_number()) type_error("number");
  return std::get<double>(v_);
}

const std::string& Value::as_string() const {
  if (!is_string()) type_error("string");
  return std::get<std::string>(v_);
}

const Array& Value::as_array() const {
  if (!is_array()) type_error("array");
  return std::get<Array>(v_);
}

const Object& Value::as_object() const {
  if (!is_object()) type_error("object");
  return std::get<Object>(v_);
}

Array& Value::as_array() {
  if (!is_array()) type_error("array");
  return std::get<Array>(v_);
}

Object& Value::as_object() {
  if (!is_object()) type_error("object");
  return std::get<Object>(v_);
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(v_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("json: missing member '" + std::string(key) +
                             "'");
  }
  return *v;
}

void Value::set(std::string_view key, Value v) {
  if (is_null()) v_ = Object{};
  Object& obj = as_object();
  for (auto& [k, existing] : obj) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj.emplace_back(std::string(key), std::move(v));
}

double Value::number_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::string Value::string_or(std::string_view key,
                             std::string fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string()
                                          : std::move(fallback);
}

Value Value::parse(std::string_view text) {
  return Parser(text).parse_document();
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * d, ' ');
  };
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    append_number(out, as_number());
  } else if (is_string()) {
    append_quoted(out, as_string());
  } else if (is_array()) {
    const Array& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i > 0) out += indent < 0 ? ", " : ",";
      newline_pad(depth + 1);
      arr[i].dump_to(out, indent, depth + 1);
    }
    newline_pad(depth);
    out += ']';
  } else {
    const Object& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (std::size_t i = 0; i < obj.size(); ++i) {
      if (i > 0) out += indent < 0 ? ", " : ",";
      newline_pad(depth + 1);
      append_quoted(out, obj[i].first);
      out += ": ";
      obj[i].second.dump_to(out, indent, depth + 1);
    }
    newline_pad(depth);
    out += '}';
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

std::optional<Value> load_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string text;
  char buf[1 << 14];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) return std::nullopt;
  try {
    return Value::parse(text);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

bool save_file_atomic(const std::string& path, const Value& v, int indent) {
  // Stage in the target's directory so the final rename cannot cross a
  // filesystem boundary (rename(2) atomicity holds only within one fs).
  // The pid + per-process sequence number keeps concurrent writers -- other
  // processes and other threads -- on distinct staging files.
  static std::atomic<std::uint64_t> sequence{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<unsigned>(::getpid())) +
      "." + std::to_string(sequence.fetch_add(1, std::memory_order_relaxed));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string text = v.dump(indent);
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  ok = ok && std::fputc('\n', f) != EOF;
  ok = std::fflush(f) == 0 && ok;
  // fsync before the rename: rename(2) is atomic in the namespace but says
  // nothing about data durability, so without this a crash shortly after the
  // rename could leave the *visible* file empty or torn.  With it, once the
  // new name exists its content is complete on stable storage.
  ok = ok && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (ok) ok = std::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) std::remove(tmp.c_str());
  return ok;
}

}  // namespace pgmcml::obs::json
