// Low-overhead, thread-safe observability: named monotone counters,
// log2-bucketed histograms, and hierarchical RAII timer spans, collected in
// a Registry and exported as deterministic Snapshots.
//
// The aggregation discipline matches the PR 3 accumulators:
//   * Counters and histogram bucket/count fields are exact integer sums, so
//     a snapshot of work distributed over util::parallel_for is identical at
//     any thread count (each unit of work contributes the same increments,
//     addition commutes).
//   * Snapshot::merge is the Chan-style combine for the histogram moments:
//     counts and buckets add, min/max take the extremum, sums add.  Merging
//     is associative and commutative; the double-precision `sum` field is
//     bitwise-associative only for dyadic values (durations are inherently
//     nondeterministic anyway -- the invariants the tests pin are the
//     integer fields).
//   * Snapshots order metrics by name (std::map), so two equal registries
//     serialize identically.
//
// Hot-path cost: one relaxed atomic RMW per counter increment; a histogram
// observation is a handful of relaxed RMWs.  Handle lookup (Registry::
// counter / histogram) takes a mutex -- hoist handles out of inner loops
// (function-local statics are the usual pattern; Registry::reset zeroes
// values but never invalidates handles).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "pgmcml/obs/json.hpp"

namespace pgmcml::obs {

/// Histogram bucket b covers values in [2^(b-31), 2^(b-30)); bucket 0 also
/// absorbs everything below 2^-31 (~0.47 ns for timers) and the top bucket
/// everything above.  64 buckets span ~19 decades -- every duration, byte
/// count or iteration count the pipeline produces.
inline constexpr std::size_t kHistogramBuckets = 64;

/// Returns the bucket index for a value (0 for non-finite or <= 0 input).
std::size_t histogram_bucket(double value);

/// Plain-data histogram state, as captured by a Snapshot.
struct HistogramData {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();   ///< +inf when empty
  double max = -std::numeric_limits<double>::infinity();  ///< -inf when empty
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  /// Chan-style combine: counts/buckets add, extrema take the extremum.
  void merge(const HistogramData& other);
  bool operator==(const HistogramData& other) const = default;
};

/// Deterministic, mergeable export of a Registry: metric name -> value, in
/// name order.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramData> histograms;

  /// Counter value by name; 0 when the counter was never touched.
  std::uint64_t counter(std::string_view name) const;
  /// Element-wise combine (counters add, histograms Chan-merge).
  void merge(const Snapshot& other);
  /// {"counters": {...}, "histograms": {name: {count, sum, min, max,
  /// buckets: [[index, count], ...]}}} with sparse bucket encoding.
  json::Value to_json() const;
  std::string to_json_string() const;
  /// Inverse of to_json (tolerates missing sections).  Throws on malformed
  /// structure.
  static Snapshot from_json(const json::Value& v);
};

class Registry;

/// Cheap handle to one named counter.  Copyable; valid for the lifetime of
/// its Registry (reset() zeroes the value but keeps the cell).
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) {
    if (v_ != nullptr) v_->fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return v_ != nullptr ? v_->load(std::memory_order_relaxed) : 0;
  }

 private:
  friend class Registry;
  explicit Counter(std::atomic<std::uint64_t>* v) : v_(v) {}
  std::atomic<std::uint64_t>* v_ = nullptr;
};

/// Cheap handle to one named histogram.
class Histogram {
 public:
  Histogram() = default;
  /// Records one observation (non-finite values count into bucket 0 and are
  /// excluded from sum/min/max so one NaN cannot poison the aggregate).
  void observe(double value);

 private:
  friend class Registry;
  struct Cell;
  explicit Histogram(Cell* cell) : cell_(cell) {}
  Cell* cell_ = nullptr;
};

/// Thread-safe named-metric registry.  One process-wide instance
/// (Registry::global()) backs the wired-in instrumentation; tests can use
/// private instances.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates the named metric.  Handles remain valid until the
  /// Registry is destroyed.
  Counter counter(std::string_view name);
  Histogram histogram(std::string_view name);

  /// Consistent point-in-time copy of every metric, ordered by name.
  Snapshot snapshot() const;

  /// Zeroes every metric value.  Handles stay valid -- benches call this
  /// between phases to attribute counts.
  void reset();

  static Registry& global();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// RAII hierarchical timer span.  Nested spans on the same thread build a
/// '/'-joined path ("dpa_flow.run/spice.transient"); on destruction the
/// wall-clock duration in seconds is observed into the histogram
/// "time/<path>" of the target registry.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name)
      : ScopedTimer(name, Registry::global()) {}
  ScopedTimer(std::string_view name, Registry& registry);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// The calling thread's current span path ("" outside any span).
  static std::string current_path();

 private:
  Registry* registry_;
  std::size_t prev_length_;  ///< thread-local path length to restore
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pgmcml::obs
