/// \file json.hpp
/// Minimal JSON value, parser and writer for the observability layer, the
/// bench manifests, and the on-disk result cache.  Deliberately tiny:
/// objects are ordered key/value vectors (insertion order is preserved and
/// is what dump() emits), numbers are doubles (integral values round-trip
/// as integers up to 2^53; non-integral doubles are emitted with 17
/// significant digits, so every finite double round-trips bitwise), and
/// parse() rejects malformed input with a positioned error instead of
/// guessing.  Parsing is hardened for untrusted input (config files are
/// external data): nesting beyond 128 levels and duplicate object keys are
/// ParseErrors, never stack overflows or silent first-binding-wins lookups.
/// No external dependencies -- this is the repo's one JSON
/// implementation, shared by Snapshot::to_json, the manifest writer,
/// bench_compare and pgmcml::cache.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace pgmcml::obs::json {

class Value;

/// Array of values.
using Array = std::vector<Value>;
/// Ordered object: a key/value sequence.  Kept as a vector (not a map) so
/// Value stays complete inside its own variant and emission order is the
/// caller's insertion order.
using Object = std::vector<std::pair<std::string, Value>>;

/// Thrown by Value::parse on malformed input, with the byte offset.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Value {
 public:
  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  Value(double d) : v_(d) {}
  Value(int i) : v_(static_cast<double>(i)) {}
  Value(std::int64_t i) : v_(static_cast<double>(i)) {}
  Value(std::uint64_t u) : v_(static_cast<double>(u)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const Value* find(std::string_view key) const;
  /// Like find(), but throws std::runtime_error when the key is missing.
  const Value& at(std::string_view key) const;
  /// Appends (or replaces the first occurrence of) an object member.
  void set(std::string_view key, Value v);

  /// Number shortcut: member `key` as a double, or `fallback` when the
  /// member is missing or not a number.
  double number_or(std::string_view key, double fallback) const;
  /// String shortcut, same contract.
  std::string string_or(std::string_view key, std::string fallback) const;

  /// Parses one JSON document (trailing non-whitespace is an error).
  static Value parse(std::string_view text);

  /// Serializes.  indent < 0: compact one-line output; indent >= 0: pretty-
  /// printed with that many spaces per level.
  std::string dump(int indent = -1) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Escapes and quotes `s` as a JSON string literal, appended to `out`.
void append_quoted(std::string& out, std::string_view s);

/// Reads and parses one JSON document from `path`.  Returns nullopt on any
/// failure -- missing file, I/O error, malformed JSON -- never throws; this
/// is the corruption-tolerant load the result cache builds on.
std::optional<Value> load_file(const std::string& path);

/// Serializes `v` (with the given indent, see Value::dump) and writes it to
/// `path` atomically: the document lands in a temporary file in the same
/// directory first and is then renamed over the target, so a concurrent
/// reader sees either the old file or the complete new one, never a torn
/// write.  Returns false on I/O failure.
bool save_file_atomic(const std::string& path, const Value& v,
                      int indent = -1);

}  // namespace pgmcml::obs::json
