#include "pgmcml/mcml/design.hpp"

namespace pgmcml::mcml {

std::string to_string(GatingTopology t) {
  switch (t) {
    case GatingTopology::kNone: return "conventional";
    case GatingTopology::kVnPullDown: return "(a) Vn pull-down";
    case GatingTopology::kVnSwitch: return "(b) Vn switch";
    case GatingTopology::kBodyBias: return "(c) body bias";
    case GatingTopology::kSeriesSleep: return "(d) series sleep";
  }
  return "?";
}

}  // namespace pgmcml::mcml
