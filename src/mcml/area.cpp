#include "pgmcml/mcml/area.hpp"

#include <cmath>

namespace pgmcml::mcml {

double AreaModel::mcml_area(CellKind kind) const {
  return cell_info(kind).pitch_count * mcml_pitch() * cell_height();
}

double AreaModel::pg_area(CellKind kind) const {
  return cell_info(kind).pitch_count * pg_pitch() * cell_height();
}

std::optional<double> AreaModel::cmos_area(CellKind kind) const {
  const CellInfo& info = cell_info(kind);
  if (!info.cmos_area_ratio.has_value()) return std::nullopt;
  return pg_area(kind) / *info.cmos_area_ratio;
}

int AreaModel::estimate_pitches(CellKind kind, bool power_gated) const {
  // Empirically the library's cells place ~1.8 transistors per pitch, with
  // wiring-heavy cells (the full adder) closer to 1.6.  This is only a
  // sanity check against the committed layout data.
  const int t = transistor_count(kind, power_gated);
  return static_cast<int>(std::lround(t * 0.58));
}

}  // namespace pgmcml::mcml
