#include "pgmcml/mcml/characterize.hpp"

#include "pgmcml/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "pgmcml/cache/cache.hpp"
#include "pgmcml/mcml/area.hpp"
#include "pgmcml/mcml/bias.hpp"
#include "pgmcml/util/parallel.hpp"
#include "pgmcml/util/units.hpp"

namespace pgmcml::mcml {

using spice::NodeId;
using spice::SourceSpec;
using util::ns;
using util::ps;

namespace {

/// Per-cell stimulus plan: which input toggles and how the others are held
/// so the toggling input is sensitized to the measured output.
struct StimPlan {
  int toggle = 0;                ///< index into the data-input list
  std::vector<int> statics;      ///< values of the data inputs (toggle: don't care)
  int ctrl_value = 0;            ///< reset = 0 / enable = 1
  int measure_output = 0;
  bool clk_static_high = false;  ///< latch: keep transparent
};

StimPlan stim_plan(CellKind kind) {
  switch (kind) {
    case CellKind::kBuf:
    case CellKind::kDiff2Single: return {0, {0}, 0, 0, false};
    case CellKind::kAnd2: return {0, {0, 1}, 0, 0, false};
    case CellKind::kAnd3: return {0, {0, 1, 1}, 0, 0, false};
    case CellKind::kAnd4: return {0, {0, 1, 1, 1}, 0, 0, false};
    case CellKind::kMux2: return {1, {0, 0, 0}, 0, 0, false};
    case CellKind::kMux4: return {2, {0, 0, 0, 0, 0, 0}, 0, 0, false};
    case CellKind::kMaj3: return {0, {0, 1, 0}, 0, 0, false};
    case CellKind::kXor2: return {0, {0, 0}, 0, 0, false};
    case CellKind::kXor3: return {0, {0, 0, 0}, 0, 0, false};
    case CellKind::kXor4: return {0, {0, 0, 0, 0}, 0, 0, false};
    case CellKind::kDLatch: return {0, {0}, 0, 0, true};
    case CellKind::kDff:
    case CellKind::kDffR: return {0, {0}, 0, 0, false};
    case CellKind::kEDff: return {0, {0}, 1, 0, false};
    case CellKind::kFullAdder: return {0, {0, 1, 0}, 0, 0, false};
  }
  return {};
}

/// Retry-once-then-record policy shared by every testbench transient in this
/// file: a failed first attempt is re-run with tightened options; the
/// outcome (recovery or skip) lands in `diag` either way.
spice::TranResult run_with_retry(McmlTestbench& bench, const std::string& stage,
                                 spice::FlowDiagnostics& diag) {
  diag.record_attempt();
  spice::TranResult tr = bench.run();
  diag.engine.merge(tr.stats);
  if (tr.ok) return tr;
  diag.record_retry(stage, tr.failure.describe());
  tr = bench.run(/*tightened=*/true);
  diag.engine.merge(tr.stats);
  if (tr.ok) {
    diag.record_recovery(stage);
  } else {
    diag.record_skip(stage, tr.failure.describe());
  }
  return tr;
}

}  // namespace

void add_technology_to_key(cache::KeyBuilder& kb,
                           const spice::Technology& tech) {
  const spice::TechnologyParams& p = tech.params();
  kb.add("tech.name", p.name);
  kb.add("tech.corner", p.corner_label);
  kb.add("tech.vdd", p.vdd);
  kb.add("tech.lmin", p.lmin);
  kb.add("tech.avt", p.avt);
  kb.add("tech.akp", p.akp);
  const auto add_model = [&kb](const char* which,
                               const spice::DeviceModel& m) {
    const std::string prefix = std::string("tech.") + which + ".";
    kb.add(prefix + "vth0", m.vth0);
    kb.add(prefix + "kp", m.kp);
    kb.add(prefix + "lambda", m.lambda);
    kb.add(prefix + "n_sub", m.n_sub);
    kb.add(prefix + "gamma", m.gamma);
    kb.add(prefix + "phi", m.phi);
    kb.add(prefix + "cox_area", m.cox_area);
    kb.add(prefix + "cov_width", m.cov_width);
    kb.add(prefix + "cj_width", m.cj_width);
  };
  add_model("nmos_lvt", p.nmos_lvt);
  add_model("nmos_hvt", p.nmos_hvt);
  add_model("pmos_lvt", p.pmos_lvt);
  add_model("pmos_hvt", p.pmos_hvt);
}

void add_design_to_key(cache::KeyBuilder& kb, const McmlDesign& design) {
  add_technology_to_key(kb, design.tech);
  kb.add("iss", design.iss);
  kb.add("vsw", design.vsw);
  kb.add("vn", design.vn);
  kb.add("vp", design.vp);
  kb.add("w_pair", design.w_pair);
  kb.add("w_tail", design.w_tail);
  kb.add("w_load", design.w_load);
  kb.add("l_tail", design.l_tail);
  kb.add("drive", design.drive);
  kb.add("gating", to_string(design.gating));
  kb.add("network_vt", spice::to_string(design.network_vt));
  kb.add("load_vt", spice::to_string(design.load_vt));
  kb.add("parasitics", design.include_parasitics);
}

obs::json::Value to_json(const CellCharacterization& ch) {
  obs::json::Object o;
  o.emplace_back("kind", static_cast<std::int64_t>(ch.kind));
  o.emplace_back("ok", ch.ok);
  o.emplace_back("error", ch.error);
  o.emplace_back("delay", ch.delay);
  o.emplace_back("swing", ch.swing);
  o.emplace_back("static_current", ch.static_current);
  o.emplace_back("static_power", ch.static_power);
  o.emplace_back("sleep_current", ch.sleep_current);
  o.emplace_back("wake_time", ch.wake_time);
  o.emplace_back("transistors", ch.transistors);
  o.emplace_back("diagnostics", ch.diagnostics.to_json_value());
  return obs::json::Value(std::move(o));
}

std::optional<CellCharacterization> characterization_from_json(
    const obs::json::Value& v) {
  if (!v.is_object() || v.find("delay") == nullptr ||
      v.find("diagnostics") == nullptr) {
    return std::nullopt;
  }
  try {
    CellCharacterization ch;
    ch.kind = static_cast<CellKind>(
        static_cast<int>(v.number_or("kind", 0.0)));
    ch.ok = v.at("ok").as_bool();
    ch.error = v.string_or("error", "");
    ch.delay = v.number_or("delay", 0.0);
    ch.swing = v.number_or("swing", 0.0);
    ch.static_current = v.number_or("static_current", 0.0);
    ch.static_power = v.number_or("static_power", 0.0);
    ch.sleep_current = v.number_or("sleep_current", 0.0);
    ch.wake_time = v.number_or("wake_time", 0.0);
    ch.transistors = static_cast<int>(v.number_or("transistors", 0.0));
    ch.diagnostics = spice::FlowDiagnostics::from_json_value(
        v.at("diagnostics"));
    return ch;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

obs::json::Value to_json(const BufferSweepPoint& pt) {
  obs::json::Object o;
  o.emplace_back("ok", pt.ok);
  o.emplace_back("error", pt.error);
  o.emplace_back("iss", pt.iss);
  o.emplace_back("vn", pt.vn);
  o.emplace_back("vp", pt.vp);
  o.emplace_back("delay_fo1", pt.delay_fo1);
  o.emplace_back("delay_fo4", pt.delay_fo4);
  o.emplace_back("power", pt.power);
  o.emplace_back("area", pt.area);
  o.emplace_back("diagnostics", pt.diagnostics.to_json_value());
  return obs::json::Value(std::move(o));
}

std::optional<BufferSweepPoint> sweep_point_from_json(
    const obs::json::Value& v) {
  if (!v.is_object() || v.find("iss") == nullptr ||
      v.find("diagnostics") == nullptr) {
    return std::nullopt;
  }
  try {
    BufferSweepPoint pt;
    pt.ok = v.at("ok").as_bool();
    pt.error = v.string_or("error", "");
    pt.iss = v.number_or("iss", 0.0);
    pt.vn = v.number_or("vn", 0.0);
    pt.vp = v.number_or("vp", 0.0);
    pt.delay_fo1 = v.number_or("delay_fo1", 0.0);
    pt.delay_fo4 = v.number_or("delay_fo4", 0.0);
    pt.power = v.number_or("power", 0.0);
    pt.area = v.number_or("area", 0.0);
    pt.diagnostics = spice::FlowDiagnostics::from_json_value(
        v.at("diagnostics"));
    return pt;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

McmlTestbench::McmlTestbench(CellKind kind, const McmlDesign& design,
                             TestbenchOptions options)
    : design_(design) {
  build(kind, design, options);
}

void McmlTestbench::build(CellKind kind, const McmlDesign& design,
                          const TestbenchOptions& options) {
  const CellInfo& info = cell_info(kind);
  const StimPlan plan = stim_plan(kind);
  sequential_ = info.sequential && !plan.clk_static_high;
  single_ended_out_ = (kind == CellKind::kDiff2Single);
  t_stop_ = sequential_ ? 10 * ns : 8 * ns;

  McmlRails rails;
  rails.vdd = circuit_.node("vdd");
  rails.vp = circuit_.node("vp");
  rails.vn = circuit_.node("vn");
  rails.sleep_on = circuit_.node("slp");
  rails.sleep_off = circuit_.node("slpb");
  const double vdd = design.tech.vdd();
  circuit_.add_vsource("VDD", rails.vdd, circuit_.gnd(), SourceSpec::dc(vdd));
  circuit_.add_vsource("VP", rails.vp, circuit_.gnd(), SourceSpec::dc(design.vp));
  circuit_.add_vsource("VN", rails.vn, circuit_.gnd(), SourceSpec::dc(design.vn));
  if (options.asleep) {
    circuit_.add_vsource("VSLP", rails.sleep_on, circuit_.gnd(),
                         SourceSpec::dc(0.0));
    circuit_.add_vsource("VSLPB", rails.sleep_off, circuit_.gnd(),
                         SourceSpec::dc(vdd));
  } else if (options.sleep_pulse) {
    circuit_.add_vsource(
        "VSLP", rails.sleep_on, circuit_.gnd(),
        SourceSpec::pulse(0.0, vdd, options.sleep_rise_time, 50 * ps, 50 * ps,
                          1.0));
    circuit_.add_vsource(
        "VSLPB", rails.sleep_off, circuit_.gnd(),
        SourceSpec::pulse(vdd, 0.0, options.sleep_rise_time, 50 * ps, 50 * ps,
                          1.0));
  } else {
    circuit_.add_vsource("VSLP", rails.sleep_on, circuit_.gnd(),
                         SourceSpec::dc(vdd));
    circuit_.add_vsource("VSLPB", rails.sleep_off, circuit_.gnd(),
                         SourceSpec::dc(0.0));
  }

  McmlCellBuilder builder(circuit_, design, rails, "dut.");

  const double vh = design.v_high();
  const double vl = design.v_low();
  auto add_diff_dc = [&](const std::string& name, int value) {
    DiffNet net = builder.make_diff(name);
    circuit_.add_vsource("V" + name + "P", net.p, circuit_.gnd(),
                         SourceSpec::dc(value ? vh : vl));
    circuit_.add_vsource("V" + name + "N", net.n, circuit_.gnd(),
                         SourceSpec::dc(value ? vl : vh));
    return net;
  };
  auto add_diff_pulse = [&](const std::string& name, double delay,
                            double width, double period) {
    DiffNet net = builder.make_diff(name);
    circuit_.add_vsource(
        "V" + name + "P", net.p, circuit_.gnd(),
        SourceSpec::pulse(vl, vh, delay, 20 * ps, 20 * ps, width, period));
    circuit_.add_vsource(
        "V" + name + "N", net.n, circuit_.gnd(),
        SourceSpec::pulse(vh, vl, delay, 20 * ps, 20 * ps, width, period));
    return net;
  };

  // Data inputs.
  std::vector<DiffNet> data;
  const bool freeze_toggle = options.asleep || options.sleep_pulse;
  for (int i = 0; i < info.num_inputs; ++i) {
    const std::string name = "in" + std::to_string(i);
    if (options.hold_state >= 0) {
      // State-held bench: every input pinned DC, no transient stimulus.
      data.push_back(add_diff_dc(name, (options.hold_state >> i) & 1));
    } else if (i == plan.toggle && !freeze_toggle) {
      if (sequential_) {
        // Slow data pulse; the clock samples it.
        data.push_back(add_diff_pulse(name, 3 * ns, 4 * ns, 0.0));
      } else {
        data.push_back(add_diff_pulse(name, 2 * ns, 2 * ns, 4 * ns));
      }
    } else if (i == plan.toggle) {
      data.push_back(add_diff_dc(name, 1));  // frozen high for sleep tests
    } else {
      data.push_back(add_diff_dc(name, plan.statics[i]));
    }
  }

  DiffNet clk;
  if (info.num_clocks > 0) {
    if (plan.clk_static_high || freeze_toggle || options.hold_state >= 0) {
      clk = add_diff_dc("clk", 1);
    } else {
      clk = add_diff_pulse("clk", 0.5 * ns, 0.96 * ns, 2 * ns);
    }
  }
  DiffNet ctrl;
  if (info.num_controls > 0) ctrl = add_diff_dc("ctl", plan.ctrl_value);

  const CellPorts ports = builder.emit_cell(kind, data, clk, ctrl);
  outputs_ = ports.outputs;
  toggle_in_ = data.empty() ? DiffNet{} : data[plan.toggle];
  stages_ = builder.stages_emitted();
  mosfets_ = builder.mosfets_emitted();

  // Fan-out loading on the measured output: `fanout` buffer-input gate
  // capacitances per phase plus a fixed wire allowance.
  const double cin =
      design.tech.nmos(design.network_vt, design.eff_w_pair()).cgs();
  const double cload = options.fanout * cin + 1e-15;
  const DiffNet out = outputs_.at(plan.measure_output);
  circuit_.add_capacitor("CLP", out.p, circuit_.gnd(), cload);
  if (out.n >= 0) circuit_.add_capacitor("CLN", out.n, circuit_.gnd(), cload);

  // Reference stimulus edges (50% points of the input/clock transitions).
  if (sequential_) {
    // Data changes at 3 ns (rise) and 7 ns (fall); the sampling clock edges
    // are the next rising edges at 4.51 ns and 8.51 ns.
    stimulus_edges_ = {4.5 * ns + 10 * ps, 8.5 * ns + 10 * ps};
  } else {
    stimulus_edges_ = {2 * ns + 10 * ps, 4 * ns + 10 * ps, 6 * ns + 10 * ps};
  }
}

spice::TranResult McmlTestbench::run(bool tightened) {
  spice::TranOptions opt;
  opt.dt_max = 10 * ps;
  if (tightened) {
    opt.dt_max *= 0.5;
    opt.max_newton *= 2;
  }
  return spice::transient(circuit_, t_stop_, opt, workspace_);
}

spice::DcResult McmlTestbench::run_dc() {
  return spice::dc_operating_point(circuit_, {}, workspace_);
}

util::Waveform McmlTestbench::supply_current(
    const spice::TranResult& tr) const {
  return spice::supply_current(circuit_, tr, "VDD");
}

util::Waveform McmlTestbench::diff_output(const spice::TranResult& tr,
                                          int index) const {
  const DiffNet out = outputs_.at(index);
  if (out.n < 0) {
    // Single-ended (CMOS-level) output: reference to mid-rail.
    util::Waveform w = tr.node_waveform(out.p);
    util::Waveform shifted;
    for (const auto& pt : w.points()) {
      shifted.append(pt.t, pt.v - 0.5 * design_.tech.vdd());
    }
    return shifted;
  }
  const util::Waveform p = tr.node_waveform(out.p);
  const util::Waveform n = tr.node_waveform(out.n);
  return p.plus(n.scaled(-1.0));
}

namespace {

CellCharacterization characterize_cell_uncached(CellKind kind,
                                                const McmlDesign& design,
                                                int fanout) {
  CellCharacterization out;
  out.kind = kind;

  McmlDesign d = design;
  const BiasResult bias = solve_bias(d);
  if (!bias.ok) {
    out.error = "bias: " + bias.error;
    return out;
  }

  // --- awake transient: delay, swing, static current -----------------------
  TestbenchOptions opt;
  opt.fanout = fanout;
  McmlTestbench bench(kind, d, opt);
  out.transistors = bench.mosfets();
  const spice::TranResult tr =
      run_with_retry(bench, "characterize:awake", out.diagnostics);
  if (!tr.ok) {
    out.error = "transient: " + tr.error;
    return out;
  }
  const util::Waveform vout = bench.diff_output(tr);

  std::vector<double> delays;
  const auto edges = bench.stimulus_edges();
  // Skip the first combinational edge (startup transients).
  const std::size_t first = bench.sequential() ? 0 : 1;
  for (std::size_t i = first; i < edges.size(); ++i) {
    const auto cross = vout.crossing(0.0, 0, edges[i]);
    if (!cross.has_value()) continue;
    const double dt = *cross - edges[i];
    if (dt > 0.0 && dt < 1.8e-9) delays.push_back(dt);
  }
  if (delays.empty()) {
    out.error = "no output transition found";
    return out;
  }
  out.delay = util::mean(delays);
  out.swing = 0.5 * (vout.max_value() - vout.min_value());

  const util::Waveform isupply = bench.supply_current(tr);
  const double quiet_lo = bench.sequential() ? 3.6e-9 : 1.0e-9;
  const double quiet_hi = bench.sequential() ? 4.4e-9 : 1.9e-9;
  out.static_current = isupply.average(quiet_lo, quiet_hi);
  out.static_power = out.static_current * d.tech.vdd();

  // --- gated-off leakage ----------------------------------------------------
  if (d.power_gated()) {
    TestbenchOptions sleep_opt;
    sleep_opt.fanout = fanout;
    sleep_opt.asleep = true;
    McmlTestbench sleeping(kind, d, sleep_opt);
    out.diagnostics.record_attempt();
    const spice::DcResult dc = sleeping.run_dc();
    out.diagnostics.engine.merge(dc.stats);
    if (dc.converged) {
      spice::Solution sol(dc.x, sleeping.circuit().num_nodes());
      const auto id = sleeping.circuit().find_device("VDD");
      out.sleep_current = -sleeping.circuit().device(id).probe_current(sol);
    } else {
      // Leakage is reported as 0 but the miss is recorded, not silent.
      out.diagnostics.record_skip("characterize:sleep-dc",
                                  dc.error.describe());
    }

    // --- wake-up time --------------------------------------------------------
    TestbenchOptions wake_opt;
    wake_opt.fanout = fanout;
    wake_opt.sleep_pulse = true;
    wake_opt.sleep_rise_time = 1e-9;
    McmlTestbench waking(kind, d, wake_opt);
    const spice::TranResult wr =
        run_with_retry(waking, "characterize:wake", out.diagnostics);
    if (wr.ok) {
      const util::Waveform w = waking.diff_output(wr);
      const double final_v = w.value_at(waking.t_stop());
      const double target = 0.9 * final_v;
      // Search from the sleep edge for the 90% settling point.
      const auto t90 =
          final_v >= 0 ? w.crossing(target, +1, 1e-9) : w.crossing(target, -1, 1e-9);
      if (t90.has_value()) out.wake_time = *t90 - 1e-9;
    }
  } else {
    out.sleep_current = out.static_current;
  }

  out.ok = true;
  return out;
}

}  // namespace

CellCharacterization characterize_cell(CellKind kind, const McmlDesign& design,
                                       int fanout) {
  cache::ResultCache& rc = cache::ResultCache::global();
  // Mismatch draws come from the caller's Rng stream and are not part of the
  // key, so perturbed designs always solve fresh (Monte-Carlo keys the draw
  // by (seed, sample) instead; see montecarlo.cpp).
  if (!rc.enabled() || design.mismatch_rng != nullptr) {
    return characterize_cell_uncached(kind, design, fanout);
  }

  cache::KeyBuilder kb("mcml.characterize_cell");
  kb.add("kind", static_cast<std::int64_t>(kind));
  kb.add("fanout", fanout);
  add_design_to_key(kb, design);
  const cache::CacheKey key = kb.key();

  if (std::optional<obs::json::Value> hit = rc.get(key)) {
    if (std::optional<CellCharacterization> ch =
            characterization_from_json(*hit)) {
      return *std::move(ch);
    }
  }
  CellCharacterization out = characterize_cell_uncached(kind, design, fanout);
  rc.put(key, to_json(out));
  return out;
}

namespace {

BufferSweepPoint characterize_buffer_at_uncached(const McmlDesign& base,
                                                 double iss) {
  BufferSweepPoint pt;
  pt.iss = iss;

  McmlDesign d = base;
  const double scale = iss / base.iss;
  d.iss = iss;
  // Resize for constant current density / overdrive, as a designer would.
  d.w_tail = base.w_tail * scale;
  d.w_pair = base.w_pair * std::max(scale, 0.25);
  d.w_load = base.w_load * std::max(scale, 0.25);
  const BiasResult bias = solve_bias(d);
  if (!bias.ok) {
    pt.error = "bias: " + bias.error;
    return pt;
  }
  pt.vn = d.vn;
  pt.vp = d.vp;

  // No -1.0 sentinel: a failed measurement yields nullopt plus a structured
  // error and an incident in pt.diagnostics.
  auto delay_at = [&](int fanout) -> std::optional<double> {
    TestbenchOptions opt;
    opt.fanout = fanout;
    McmlTestbench bench(CellKind::kBuf, d, opt);
    const std::string stage = "sweep:fo" + std::to_string(fanout);
    const spice::TranResult tr = run_with_retry(bench, stage, pt.diagnostics);
    if (!tr.ok) {
      pt.error = "transient: " + tr.error;
      return std::nullopt;
    }
    const util::Waveform vout = bench.diff_output(tr);
    std::vector<double> delays;
    const auto edges = bench.stimulus_edges();
    for (std::size_t i = 1; i < edges.size(); ++i) {
      const auto cross = vout.crossing(0.0, 0, edges[i]);
      if (cross.has_value() && *cross - edges[i] < 1.8e-9) {
        delays.push_back(*cross - edges[i]);
      }
    }
    if (delays.empty()) {
      pt.error = "no output transition found at fan-out " +
                 std::to_string(fanout);
      return std::nullopt;
    }
    return util::mean(delays);
  };

  const std::optional<double> fo1 = delay_at(1);
  const std::optional<double> fo4 = delay_at(4);
  if (!fo1.has_value() || !fo4.has_value()) return pt;
  pt.delay_fo1 = *fo1;
  pt.delay_fo4 = *fo4;

  pt.power = d.tech.vdd() * iss;
  // Area grows with the Iss-proportional device widths.  Wiring and
  // diffusion sharing dominate the footprint, so only about half a pitch of
  // the nominal 5-pitch buffer scales with the tail stack's current.
  AreaModel area;
  const double pitches = 4.5 + 0.5 * (iss / 50e-6);
  pt.area = pitches * area.pg_pitch() * area.cell_height();
  pt.ok = true;
  return pt;
}

}  // namespace

BufferSweepPoint characterize_buffer_at(const McmlDesign& base, double iss) {
  cache::ResultCache& rc = cache::ResultCache::global();
  if (!rc.enabled() || base.mismatch_rng != nullptr) {
    return characterize_buffer_at_uncached(base, iss);
  }
  cache::KeyBuilder kb("mcml.characterize_buffer_at");
  add_design_to_key(kb, base);
  kb.add("point_iss", iss);
  const cache::CacheKey key = kb.key();
  if (std::optional<obs::json::Value> hit = rc.get(key)) {
    if (std::optional<BufferSweepPoint> pt = sweep_point_from_json(*hit)) {
      return *std::move(pt);
    }
  }
  BufferSweepPoint pt = characterize_buffer_at_uncached(base, iss);
  rc.put(key, to_json(pt));
  return pt;
}

std::vector<BufferSweepPoint> sweep_buffer_bias(
    const McmlDesign& base, const std::vector<double>& currents) {
  return util::parallel_map(currents.size(), [&](std::size_t i) {
    return characterize_buffer_at(base, currents[i]);
  });
}

namespace {

/// DC supply current of a state-held testbench; nullopt when the operating
/// point does not converge (recorded as a skip on `diag`).  A nonzero
/// mismatch_seed re-draws the SAME process variation before every build, so
/// each held state measures one frozen die instance (the montecarlo idiom:
/// identical re-seeding makes every construction see identical draws).
std::optional<double> held_state_current(CellKind kind, const McmlDesign& d,
                                         int state, bool asleep,
                                         std::uint64_t mismatch_seed,
                                         spice::FlowDiagnostics& diag) {
  TestbenchOptions opt;
  opt.hold_state = state;
  opt.asleep = asleep;
  McmlDesign held = d;
  util::Rng draw(mismatch_seed);
  if (mismatch_seed != 0) held.mismatch_rng = &draw;
  McmlTestbench bench(kind, held, opt);
  diag.record_attempt();
  const spice::DcResult dc = bench.run_dc();
  diag.engine.merge(dc.stats);
  if (!dc.converged) {
    diag.record_skip("state:" + std::to_string(state),
                     asleep ? "asleep DC solve diverged"
                            : "awake DC solve diverged");
    return std::nullopt;
  }
  spice::Solution sol(dc.x, bench.circuit().num_nodes());
  const auto id = bench.circuit().find_device("VDD");
  return -bench.circuit().device(id).probe_current(sol);
}

}  // namespace

StateLeakageResult measure_state_leakage(CellKind kind,
                                         const McmlDesign& design,
                                         std::uint64_t mismatch_seed) {
  StateLeakageResult out;
  out.kind = kind;
  const CellInfo& info = cell_info(kind);
  const int states = 1 << info.num_inputs;
  double awake_lo = 0.0, awake_hi = 0.0;
  double asleep_lo = 0.0, asleep_hi = 0.0;
  bool any = false;
  for (int s = 0; s < states; ++s) {
    StateLeakagePoint pt;
    pt.state = s;
    const std::optional<double> awake = held_state_current(
        kind, design, s, /*asleep=*/false, mismatch_seed, out.diagnostics);
    if (!awake.has_value()) {
      pt.error = "awake DC solve diverged";
      out.points.push_back(std::move(pt));
      continue;
    }
    pt.awake_current = *awake;
    if (design.power_gated()) {
      const std::optional<double> asleep = held_state_current(
          kind, design, s, /*asleep=*/true, mismatch_seed, out.diagnostics);
      if (!asleep.has_value()) {
        pt.error = "asleep DC solve diverged";
        out.points.push_back(std::move(pt));
        continue;
      }
      pt.asleep_current = *asleep;
    } else {
      pt.asleep_current = pt.awake_current;
    }
    pt.ok = true;
    if (!any) {
      awake_lo = awake_hi = pt.awake_current;
      asleep_lo = asleep_hi = pt.asleep_current;
      any = true;
    } else {
      awake_lo = std::min(awake_lo, pt.awake_current);
      awake_hi = std::max(awake_hi, pt.awake_current);
      asleep_lo = std::min(asleep_lo, pt.asleep_current);
      asleep_hi = std::max(asleep_hi, pt.asleep_current);
    }
    out.points.push_back(std::move(pt));
  }
  if (any) {
    out.awake_spread = awake_hi - awake_lo;
    out.asleep_spread = asleep_hi - asleep_lo;
  }
  return out;
}

}  // namespace pgmcml::mcml
