#include "pgmcml/mcml/bias.hpp"

#include <cmath>

#include "pgmcml/mcml/builder.hpp"
#include "pgmcml/spice/engine.hpp"

namespace pgmcml::mcml {

using spice::Circuit;
using spice::DcResult;
using spice::NodeId;
using spice::SourceSpec;

double replica_tail_current(const McmlDesign& design, double vn,
                            double v_common) {
  spice::NewtonWorkspace ws;
  return replica_tail_current(design, vn, v_common, ws);
}

double replica_tail_current(const McmlDesign& design, double vn,
                            double v_common, spice::NewtonWorkspace& ws) {
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId cs = c.node("cs");
  const NodeId vnn = c.node("vn");
  c.add_vsource("VDD", vdd, c.gnd(), SourceSpec::dc(design.tech.vdd()));
  c.add_vsource("VN", vnn, c.gnd(), SourceSpec::dc(vn));
  // Clamp the common node and read the current through the clamp.
  c.add_vsource("VCLAMP", cs, c.gnd(), SourceSpec::dc(v_common));

  const auto tail =
      design.tech.nmos(design.network_vt, design.eff_w_tail(), design.l_tail);
  if (design.gating == GatingTopology::kBodyBias) {
    // (c): the tail gate sees the digital ON level; Vn drives the bulk and
    // trims the current through the body effect.  The device is sized long
    // and narrow so the full-swing gate leaves the current near Iss.
    const auto t2 = design.tech.nmos(design.network_vt, 0.60e-6 * design.drive,
                                     1.0e-6);
    c.add_mosfet("MT", cs, vdd, c.gnd(), vnn, t2);
  } else if (design.gating == GatingTopology::kSeriesSleep) {
    const NodeId mid = c.node("mid");
    const auto sleep =
        design.tech.nmos(design.network_vt, design.w_sleep() * design.drive);
    c.add_mosfet("MS", cs, vdd, mid, c.gnd(), sleep);  // awake: gate high
    c.add_mosfet("MT", mid, vnn, c.gnd(), c.gnd(), tail);
  } else {
    c.add_mosfet("MT", cs, vnn, c.gnd(), c.gnd(), tail);
  }
  const DcResult dc = dc_operating_point(c, {}, ws);
  if (!dc.converged) return 0.0;
  spice::Solution sol(dc.x, c.num_nodes());
  // The clamp delivers the tail current, so its MNA branch probes negative;
  // negate to report the conventional (positive) tail current.
  const auto id = c.find_device("VCLAMP");
  return -c.device(id).probe_current(sol);
}

double replica_buffer_swing(const McmlDesign& design, double vn, double vp) {
  spice::NewtonWorkspace ws;
  return replica_buffer_swing(design, vn, vp, ws);
}

double replica_buffer_swing(const McmlDesign& design, double vn, double vp,
                            spice::NewtonWorkspace& ws) {
  Circuit c;
  McmlDesign d = design;
  d.vn = vn;
  d.vp = vp;
  McmlRails rails;
  rails.vdd = c.node("vdd");
  rails.vp = c.node("vp");
  rails.vn = c.node("vn");
  rails.sleep_on = c.node("slp");
  rails.sleep_off = c.node("slpb");
  const double vdd = design.tech.vdd();
  c.add_vsource("VDD", rails.vdd, c.gnd(), SourceSpec::dc(vdd));
  c.add_vsource("VP", rails.vp, c.gnd(), SourceSpec::dc(vp));
  c.add_vsource("VN", rails.vn, c.gnd(), SourceSpec::dc(vn));
  c.add_vsource("VSLP", rails.sleep_on, c.gnd(), SourceSpec::dc(vdd));
  c.add_vsource("VSLPB", rails.sleep_off, c.gnd(), SourceSpec::dc(0.0));

  McmlCellBuilder b(c, d, rails, "x.");
  DiffNet in = b.make_diff("in");
  c.add_vsource("VINP", in.p, c.gnd(), SourceSpec::dc(d.v_high()));
  c.add_vsource("VINN", in.n, c.gnd(), SourceSpec::dc(d.v_low()));
  const DiffNet out = b.buffer_stage(in);
  const DcResult dc = dc_operating_point(c, {}, ws);
  if (!dc.converged) return 0.0;
  return dc.v(c, out.p) - dc.v(c, out.n);
}

BiasResult solve_bias(McmlDesign& design) {
  BiasResult result;
  // One workspace per replica topology: every evaluation inside a bisection
  // solves the same structure, so the symbolic analysis runs exactly once
  // per bisection and every later solve is a numeric refactorization.
  spice::NewtonWorkspace tail_ws;
  spice::NewtonWorkspace swing_ws;

  // --- Vn by bisection on the replica tail current -------------------------
  // For the body-bias topology Vn is a bulk voltage spanning forward and
  // reverse body bias (the -500 mV..1 V range the paper calls impractical).
  const double target = design.eff_iss();
  const bool body = design.gating == GatingTopology::kBodyBias;
  double lo = body ? -0.5 : 0.05;
  double hi = body ? 1.0 : design.tech.vdd();
  if (replica_tail_current(design, hi, 0.3, tail_ws) < target) {
    result.error = "tail cannot deliver the requested Iss even at Vn = Vdd";
    return result;
  }
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double id = replica_tail_current(design, mid, 0.3, tail_ws);
    if (id < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double vn = 0.5 * (lo + hi);
  result.achieved_iss = replica_tail_current(design, vn, 0.3, tail_ws);

  // --- Vp by bracketed bisection on the buffer swing ------------------------
  // Raising Vp weakens the PMOS load (higher R) and increases the swing --
  // up to the point where the load is so weak that the tail pulls the common
  // node down, both pair devices conduct, and the differential collapses.
  // Scan coarsely for the first crossing of the target, then bisect inside
  // that bracket where the curve is monotonic.
  double vp_lo = 0.0;
  double vp_hi = -1.0;
  double prev_vp = 0.0;
  double prev_swing = replica_buffer_swing(design, vn, 0.0, swing_ws);
  for (double vp = 0.05; vp <= design.tech.vdd() - 0.1; vp += 0.05) {
    const double sw = replica_buffer_swing(design, vn, vp, swing_ws);
    if (prev_swing < design.vsw && sw >= design.vsw) {
      vp_lo = prev_vp;
      vp_hi = vp;
      break;
    }
    prev_vp = vp;
    prev_swing = sw;
  }
  if (vp_hi < 0.0) {
    result.error = "load cannot produce the requested swing";
    result.vn = vn;
    return result;
  }
  for (int i = 0; i < 50; ++i) {
    const double mid = 0.5 * (vp_lo + vp_hi);
    const double sw = replica_buffer_swing(design, vn, mid, swing_ws);
    if (sw < design.vsw) {
      vp_lo = mid;
    } else {
      vp_hi = mid;
    }
  }
  const double vp = 0.5 * (vp_lo + vp_hi);
  result.achieved_vsw = replica_buffer_swing(design, vn, vp, swing_ws);

  result.vn = vn;
  result.vp = vp;
  result.ok = std::fabs(result.achieved_iss - target) < 0.05 * target &&
              std::fabs(result.achieved_vsw - design.vsw) < 0.05 * design.vsw;
  if (!result.ok && result.error.empty()) {
    result.error = "bias bisection did not reach the 5% tolerance";
  }
  design.vn = vn;
  design.vp = vp;
  return result;
}

}  // namespace pgmcml::mcml
