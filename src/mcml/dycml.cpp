#include "pgmcml/mcml/dycml.hpp"

#include "pgmcml/spice/engine.hpp"
#include "pgmcml/util/units.hpp"

namespace pgmcml::mcml {

using spice::MosParams;
using spice::NodeId;
using spice::SourceSpec;
using util::ns;
using util::ps;

DiffNet build_dycml_buffer(spice::Circuit& c, const DycmlDesign& d,
                           NodeId vdd, NodeId clk, DiffNet in,
                           const std::string& prefix) {
  const NodeId gnd = c.gnd();
  DiffNet out{c.node(prefix + "out_p"), c.node(prefix + "out_n")};

  auto add = [&](const std::string& name, NodeId dr, NodeId g, NodeId s,
                 NodeId b, const MosParams& p) {
    c.add_mosfet(prefix + name, dr, g, s, b, p);
    if (d.include_parasitics) {
      c.add_capacitor(prefix + name + ".cgs", g, s, p.cgs());
      c.add_capacitor(prefix + name + ".cgd", g, dr, p.cgd());
      c.add_capacitor(prefix + name + ".cdb", dr, gnd, p.cdb());
    }
  };

  // Precharge PMOS pair: outputs to Vdd while clk is low.
  const MosParams pre = d.tech.pmos(spice::VtFlavor::kLowVt, d.w_precharge);
  add("MP1", out.p, clk, vdd, vdd, pre);
  add("MP2", out.n, clk, vdd, vdd, pre);

  // Keeper: weak cross-coupled PMOS holding the high side after evaluation.
  const MosParams keep = d.tech.pmos(spice::VtFlavor::kLowVt, d.w_keeper);
  add("MK1", out.p, out.n, vdd, vdd, keep);
  add("MK2", out.n, out.p, vdd, vdd, keep);

  // Differential pair into the common node.
  const NodeId cs = c.node(prefix + "cs");
  const MosParams pair = d.tech.nmos(spice::VtFlavor::kLowVt, d.w_pair);
  add("M1", out.n, in.p, cs, gnd, pair);
  add("M2", out.p, in.n, cs, gnd, pair);

  // Clocked footer into the virtual-ground tank: the discharge is
  // self-limiting once the tank charges up -- the "dynamic current source".
  const NodeId vg = c.node(prefix + "vg");
  const MosParams foot = d.tech.nmos(spice::VtFlavor::kLowVt, d.w_footer);
  add("MF", cs, clk, vg, gnd, foot);
  c.add_capacitor(prefix + "CVG", vg, gnd, d.c_virtual_gnd);
  // Tank reset switch: drains the virtual ground while precharging.
  const NodeId clkb = c.node(prefix + "clkb");
  add("MR", vg, clkb, gnd, gnd, d.tech.nmos(spice::VtFlavor::kLowVt, 0.8e-6));
  return out;
}

DycmlCharacterization characterize_dycml_buffer(const DycmlDesign& d) {
  DycmlCharacterization out;
  spice::Circuit c;
  const double vdd = d.tech.vdd();
  const NodeId nvdd = c.node("vdd");
  const NodeId clk = c.node("clk");
  const NodeId clkb = c.node("dut.clkb");  // reset switch gate (complement)
  c.add_vsource("VDD", nvdd, c.gnd(), SourceSpec::dc(vdd));
  // 2 ns period: evaluate 1 ns, precharge 1 ns; 3 cycles.
  c.add_vsource("VCLK", clk, c.gnd(),
                SourceSpec::pulse(0.0, vdd, 1 * ns, 30 * ps, 30 * ps, 0.97 * ns,
                                  2 * ns));
  c.add_vsource("VCLKB", clkb, c.gnd(),
                SourceSpec::pulse(vdd, 0.0, 1 * ns, 30 * ps, 30 * ps, 0.97 * ns,
                                  2 * ns));
  DiffNet in{c.node("in_p"), c.node("in_n")};
  // Full-rail differential input (DyCML inputs come from other DyCML gates'
  // precharged-high outputs; drive a static pattern).
  c.add_vsource("VINP", in.p, c.gnd(), SourceSpec::dc(vdd));
  c.add_vsource("VINN", in.n, c.gnd(), SourceSpec::dc(vdd - 0.6));

  const std::size_t devices_before = c.count_mosfets();
  const DiffNet outp = build_dycml_buffer(c, d, nvdd, clk, in, "dut.");
  out.transistors = static_cast<int>(c.count_mosfets() - devices_before);
  c.add_capacitor("CLP", outp.p, c.gnd(), 2e-15);
  c.add_capacitor("CLN", outp.n, c.gnd(), 2e-15);

  spice::TranOptions topt;
  topt.dt_max = 10 * ps;
  const spice::TranResult tr = spice::transient(c, 6 * ns, topt);
  if (!tr.ok) {
    out.error = tr.error;
    return out;
  }

  // Delay: evaluate edge at 3 ns (second cycle) to differential crossing.
  const util::Waveform vp = tr.node_waveform(outp.p);
  const util::Waveform vn = tr.node_waveform(outp.n);
  const util::Waveform diff = vp.plus(vn.scaled(-1.0));
  // in = 1 discharges out_n: the differential rises from 0 toward +Vswing.
  const auto cross = diff.crossing(0.2, +1, 3.0 * ns);
  if (!cross.has_value()) {
    out.error = "no evaluation transition found";
    return out;
  }
  out.delay = *cross - (3.0 * ns + 15 * ps);

  // Energy per operation: supply charge over one full cycle (3 ns..5 ns).
  const util::Waveform isup = spice::supply_current(c, tr, "VDD");
  out.energy_per_op = isup.integral(3.0 * ns, 5.0 * ns) * vdd;
  // Idle current: late in the precharge phase, before the next evaluate.
  out.idle_current = isup.average(5.6 * ns, 5.95 * ns);
  out.ok = true;
  return out;
}

}  // namespace pgmcml::mcml
