#include "pgmcml/mcml/montecarlo.hpp"

#include <optional>

#include "pgmcml/mcml/bias.hpp"
#include "pgmcml/util/parallel.hpp"
#include "pgmcml/util/units.hpp"

namespace pgmcml::mcml {

namespace {

/// Per-sample outcome, collected in index order so the RunningStats
/// accumulators see the same sequence as the original serial loop.
struct SampleOutcome {
  bool failed = false;
  double delay = 0.0;
  double swing = 0.0;
  double static_current = 0.0;
  bool has_sleep = false;
  double sleep_current = 0.0;
  spice::FlowDiagnostics diagnostics;
};

}  // namespace

MonteCarloResult monte_carlo_characterize(CellKind kind,
                                          const McmlDesign& design, int n,
                                          std::uint64_t seed) {
  MonteCarloResult result;
  result.samples = n;

  // One global bias point (the chip's shared bias generator), solved on the
  // nominal design; each sample then varies the cell's own devices.
  McmlDesign nominal = design;
  nominal.mismatch_rng = nullptr;
  const BiasResult bias = solve_bias(nominal);
  if (!bias.ok) {
    result.failures = n;
    return result;
  }

  // Fork all sample streams up front from the master, in order: the draw
  // sequence (and therefore every sample's mismatch) is identical to the
  // serial loop, independent of how the samples are later scheduled.
  const std::size_t count = n > 0 ? static_cast<std::size_t>(n) : 0;
  util::Rng master(seed);
  std::vector<util::Rng> streams;
  streams.reserve(count);
  for (std::size_t i = 0; i < count; ++i) streams.push_back(master.fork());

  std::vector<SampleOutcome> outcomes(count);
  util::parallel_for(count, [&](std::size_t i) {
    SampleOutcome& out = outcomes[i];
    const std::string stage = "montecarlo:" + std::to_string(i);
    util::Rng sample_rng = streams[i];
    McmlDesign sample = nominal;

    TestbenchOptions opt;
    opt.fanout = 1;

    // At most two build-and-run attempts; the retry re-copies the sample's
    // pre-forked stream so it sees the identical mismatch draw and differs
    // only in the tightened solver options.
    std::optional<McmlTestbench> bench;
    spice::TranResult tr;
    out.diagnostics.record_attempt();
    for (int attempt = 0; attempt < 2; ++attempt) {
      sample_rng = streams[i];
      sample = nominal;
      sample.mismatch_rng = &sample_rng;
      bench.emplace(kind, sample, opt);
      tr = bench->run(/*tightened=*/attempt > 0);
      out.diagnostics.engine.merge(tr.stats);
      if (tr.ok) {
        if (attempt > 0) out.diagnostics.record_recovery(stage);
        break;
      }
      if (attempt == 0) {
        out.diagnostics.record_retry(stage, tr.failure.describe());
      } else {
        out.diagnostics.record_skip(stage, tr.failure.describe());
      }
    }
    if (!tr.ok) {
      out.failed = true;
      return;
    }
    const util::Waveform vout = bench->diff_output(tr);
    const auto edges = bench->stimulus_edges();
    const std::size_t first = bench->sequential() ? 0 : 1;
    // Average rise and fall, like the nominal characterization.
    double delay_sum = 0.0;
    int delay_n = 0;
    for (std::size_t e = first; e < edges.size(); ++e) {
      const auto cross = vout.crossing(0.0, 0, edges[e]);
      if (cross.has_value() && *cross - edges[e] > 0 &&
          *cross - edges[e] < 1.8e-9) {
        delay_sum += *cross - edges[e];
        ++delay_n;
      }
    }
    if (delay_n == 0) {
      out.failed = true;
      return;
    }
    out.delay = delay_sum / delay_n;
    out.swing = 0.5 * (vout.max_value() - vout.min_value());
    const util::Waveform isup = bench->supply_current(tr);
    const double lo = bench->sequential() ? 3.6e-9 : 1.0e-9;
    const double hi = bench->sequential() ? 4.4e-9 : 1.9e-9;
    out.static_current = isup.average(lo, hi);

    if (sample.power_gated()) {
      util::Rng sleep_rng = sample_rng;  // same devices would need the same
      // draw; a DC leakage estimate with a fresh draw is statistically
      // equivalent for the distribution.
      McmlDesign sleep_sample = nominal;
      sleep_sample.mismatch_rng = &sleep_rng;
      TestbenchOptions sopt;
      sopt.asleep = true;
      McmlTestbench sleeping(kind, sleep_sample, sopt);
      const spice::DcResult dc = sleeping.run_dc();
      if (dc.converged) {
        spice::Solution sol(dc.x, sleeping.circuit().num_nodes());
        const auto id = sleeping.circuit().find_device("VDD");
        out.has_sleep = true;
        out.sleep_current =
            -sleeping.circuit().device(id).probe_current(sol);
      }
    }
  });

  for (const SampleOutcome& out : outcomes) {
    result.diagnostics.merge(out.diagnostics);
    if (out.failed) {
      ++result.failures;
      continue;
    }
    result.delay.add(out.delay);
    result.swing.add(out.swing);
    result.static_current.add(out.static_current);
    if (out.has_sleep) result.sleep_current.add(out.sleep_current);
  }
  return result;
}

}  // namespace pgmcml::mcml
