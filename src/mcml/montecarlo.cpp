#include "pgmcml/mcml/montecarlo.hpp"

#include "pgmcml/mcml/bias.hpp"
#include "pgmcml/util/units.hpp"

namespace pgmcml::mcml {

MonteCarloResult monte_carlo_characterize(CellKind kind,
                                          const McmlDesign& design, int n,
                                          std::uint64_t seed) {
  MonteCarloResult result;
  result.samples = n;

  // One global bias point (the chip's shared bias generator), solved on the
  // nominal design; each sample then varies the cell's own devices.
  McmlDesign nominal = design;
  nominal.mismatch_rng = nullptr;
  const BiasResult bias = solve_bias(nominal);
  if (!bias.ok) {
    result.failures = n;
    return result;
  }

  util::Rng master(seed);
  for (int i = 0; i < n; ++i) {
    util::Rng sample_rng = master.fork();
    McmlDesign sample = nominal;
    sample.mismatch_rng = &sample_rng;

    TestbenchOptions opt;
    opt.fanout = 1;
    McmlTestbench bench(kind, sample, opt);
    const spice::TranResult tr = bench.run();
    if (!tr.ok) {
      ++result.failures;
      continue;
    }
    const util::Waveform vout = bench.diff_output(tr);
    const auto edges = bench.stimulus_edges();
    const std::size_t first = bench.sequential() ? 0 : 1;
    // Average rise and fall, like the nominal characterization.
    double delay_sum = 0.0;
    int delay_n = 0;
    for (std::size_t e = first; e < edges.size(); ++e) {
      const auto cross = vout.crossing(0.0, 0, edges[e]);
      if (cross.has_value() && *cross - edges[e] > 0 &&
          *cross - edges[e] < 1.8e-9) {
        delay_sum += *cross - edges[e];
        ++delay_n;
      }
    }
    if (delay_n == 0) {
      ++result.failures;
      continue;
    }
    result.delay.add(delay_sum / delay_n);
    result.swing.add(0.5 * (vout.max_value() - vout.min_value()));
    const util::Waveform isup = bench.supply_current(tr);
    const double lo = bench.sequential() ? 3.6e-9 : 1.0e-9;
    const double hi = bench.sequential() ? 4.4e-9 : 1.9e-9;
    result.static_current.add(isup.average(lo, hi));

    if (sample.power_gated()) {
      util::Rng sleep_rng = sample_rng;  // same devices would need the same
      // draw; a DC leakage estimate with a fresh draw is statistically
      // equivalent for the distribution.
      McmlDesign sleep_sample = nominal;
      sleep_sample.mismatch_rng = &sleep_rng;
      TestbenchOptions sopt;
      sopt.asleep = true;
      McmlTestbench sleeping(kind, sleep_sample, sopt);
      const spice::DcResult dc = sleeping.run_dc();
      if (dc.converged) {
        spice::Solution sol(dc.x, sleeping.circuit().num_nodes());
        const auto id = sleeping.circuit().find_device("VDD");
        result.sleep_current.add(
            -sleeping.circuit().device(id).probe_current(sol));
      }
    }
  }
  return result;
}

}  // namespace pgmcml::mcml
