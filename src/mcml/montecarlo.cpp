#include "pgmcml/mcml/montecarlo.hpp"

#include <optional>

#include "pgmcml/cache/cache.hpp"
#include "pgmcml/cache/key.hpp"
#include "pgmcml/mcml/bias.hpp"
#include "pgmcml/mcml/characterize.hpp"
#include "pgmcml/obs/json.hpp"
#include "pgmcml/util/parallel.hpp"
#include "pgmcml/util/units.hpp"

namespace pgmcml::mcml {

namespace {

/// Per-sample outcome, collected in index order so the RunningStats
/// accumulators see the same sequence as the original serial loop.
struct SampleOutcome {
  bool failed = false;
  double delay = 0.0;
  double swing = 0.0;
  double static_current = 0.0;
  bool has_sleep = false;
  double sleep_current = 0.0;
  spice::FlowDiagnostics diagnostics;
};

obs::json::Value outcome_to_json(const SampleOutcome& out) {
  obs::json::Object o;
  o.emplace_back("failed", out.failed);
  o.emplace_back("delay", out.delay);
  o.emplace_back("swing", out.swing);
  o.emplace_back("static_current", out.static_current);
  o.emplace_back("has_sleep", out.has_sleep);
  o.emplace_back("sleep_current", out.sleep_current);
  o.emplace_back("diagnostics", out.diagnostics.to_json_value());
  return obs::json::Value(std::move(o));
}

std::optional<SampleOutcome> outcome_from_json(const obs::json::Value& v) {
  if (!v.is_object() || v.find("delay") == nullptr ||
      v.find("diagnostics") == nullptr) {
    return std::nullopt;
  }
  try {
    SampleOutcome out;
    out.failed = v.at("failed").as_bool();
    out.delay = v.number_or("delay", 0.0);
    out.swing = v.number_or("swing", 0.0);
    out.static_current = v.number_or("static_current", 0.0);
    out.has_sleep = v.at("has_sleep").as_bool();
    out.sleep_current = v.number_or("sleep_current", 0.0);
    out.diagnostics =
        spice::FlowDiagnostics::from_json_value(v.at("diagnostics"));
    return out;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Cache key for one Monte-Carlo sample.  The mismatch draw itself is not
/// hashed; it is fully determined by (seed, sample index) because the
/// per-sample streams are pre-forked in index order from master(seed), so
/// keying the fork inputs keys the draw.
cache::CacheKey sample_key(CellKind kind, const McmlDesign& nominal,
                           std::uint64_t seed, std::size_t index) {
  cache::KeyBuilder kb("mcml.monte_carlo_sample");
  kb.add("kind", static_cast<std::int64_t>(kind));
  add_design_to_key(kb, nominal);
  kb.add("seed", seed);
  kb.add("index", static_cast<std::uint64_t>(index));
  return kb.key();
}

/// Runs one mismatch sample end to end: transient characterization with the
/// two-attempt retry flow, plus the gated-off leakage DC when applicable.
SampleOutcome run_sample(CellKind kind, const McmlDesign& nominal,
                         const util::Rng& stream, std::size_t i) {
  SampleOutcome out;
  const std::string stage = "montecarlo:" + std::to_string(i);
  util::Rng sample_rng = stream;
  McmlDesign sample = nominal;

  TestbenchOptions opt;
  opt.fanout = 1;

  // At most two build-and-run attempts; the retry re-copies the sample's
  // pre-forked stream so it sees the identical mismatch draw and differs
  // only in the tightened solver options.
  std::optional<McmlTestbench> bench;
  spice::TranResult tr;
  out.diagnostics.record_attempt();
  for (int attempt = 0; attempt < 2; ++attempt) {
    sample_rng = stream;
    sample = nominal;
    sample.mismatch_rng = &sample_rng;
    bench.emplace(kind, sample, opt);
    tr = bench->run(/*tightened=*/attempt > 0);
    out.diagnostics.engine.merge(tr.stats);
    if (tr.ok) {
      if (attempt > 0) out.diagnostics.record_recovery(stage);
      break;
    }
    if (attempt == 0) {
      out.diagnostics.record_retry(stage, tr.failure.describe());
    } else {
      out.diagnostics.record_skip(stage, tr.failure.describe());
    }
  }
  if (!tr.ok) {
    out.failed = true;
    return out;
  }
  const util::Waveform vout = bench->diff_output(tr);
  const auto edges = bench->stimulus_edges();
  const std::size_t first = bench->sequential() ? 0 : 1;
  // Average rise and fall, like the nominal characterization.
  double delay_sum = 0.0;
  int delay_n = 0;
  for (std::size_t e = first; e < edges.size(); ++e) {
    const auto cross = vout.crossing(0.0, 0, edges[e]);
    if (cross.has_value() && *cross - edges[e] > 0 &&
        *cross - edges[e] < 1.8e-9) {
      delay_sum += *cross - edges[e];
      ++delay_n;
    }
  }
  if (delay_n == 0) {
    out.failed = true;
    return out;
  }
  out.delay = delay_sum / delay_n;
  out.swing = 0.5 * (vout.max_value() - vout.min_value());
  const util::Waveform isup = bench->supply_current(tr);
  const double lo = bench->sequential() ? 3.6e-9 : 1.0e-9;
  const double hi = bench->sequential() ? 4.4e-9 : 1.9e-9;
  out.static_current = isup.average(lo, hi);

  if (sample.power_gated()) {
    util::Rng sleep_rng = sample_rng;  // same devices would need the same
    // draw; a DC leakage estimate with a fresh draw is statistically
    // equivalent for the distribution.
    McmlDesign sleep_sample = nominal;
    sleep_sample.mismatch_rng = &sleep_rng;
    TestbenchOptions sopt;
    sopt.asleep = true;
    McmlTestbench sleeping(kind, sleep_sample, sopt);
    const spice::DcResult dc = sleeping.run_dc();
    if (dc.converged) {
      spice::Solution sol(dc.x, sleeping.circuit().num_nodes());
      const auto id = sleeping.circuit().find_device("VDD");
      out.has_sleep = true;
      out.sleep_current = -sleeping.circuit().device(id).probe_current(sol);
    }
  }
  return out;
}

}  // namespace

MonteCarloResult monte_carlo_characterize(CellKind kind,
                                          const McmlDesign& design, int n,
                                          std::uint64_t seed) {
  MonteCarloResult result;
  result.samples = n;

  // One global bias point (the chip's shared bias generator), solved on the
  // nominal design; each sample then varies the cell's own devices.
  McmlDesign nominal = design;
  nominal.mismatch_rng = nullptr;
  const BiasResult bias = solve_bias(nominal);
  if (!bias.ok) {
    result.failures = n;
    return result;
  }

  // Fork all sample streams up front from the master, in order: the draw
  // sequence (and therefore every sample's mismatch) is identical to the
  // serial loop, independent of how the samples are later scheduled.
  const std::size_t count = n > 0 ? static_cast<std::size_t>(n) : 0;
  util::Rng master(seed);
  std::vector<util::Rng> streams;
  streams.reserve(count);
  for (std::size_t i = 0; i < count; ++i) streams.push_back(master.fork());

  std::vector<SampleOutcome> outcomes(count);
  cache::ResultCache& rc = cache::ResultCache::global();
  util::parallel_for(count, [&](std::size_t i) {
    if (rc.enabled()) {
      const cache::CacheKey key = sample_key(kind, nominal, seed, i);
      if (std::optional<obs::json::Value> hit = rc.get(key)) {
        if (std::optional<SampleOutcome> cached = outcome_from_json(*hit)) {
          outcomes[i] = *std::move(cached);
          return;
        }
      }
      outcomes[i] = run_sample(kind, nominal, streams[i], i);
      rc.put(key, outcome_to_json(outcomes[i]));
      return;
    }
    outcomes[i] = run_sample(kind, nominal, streams[i], i);
  });

  for (const SampleOutcome& out : outcomes) {
    result.diagnostics.merge(out.diagnostics);
    if (out.failed) {
      ++result.failures;
      continue;
    }
    result.delay.add(out.delay);
    result.swing.add(out.swing);
    result.static_current.add(out.static_current);
    if (out.has_sleep) result.sleep_current.add(out.sleep_current);
  }
  return result;
}

}  // namespace pgmcml::mcml
