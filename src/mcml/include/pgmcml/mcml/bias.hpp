// Bias-point solver: finds the tail gate voltage Vn that yields the target
// Iss and the load gate voltage Vp that yields the target swing, using DC
// analyses of replica circuits (exactly how an analog designer would trim
// the cell with a simulator in the loop).
#pragma once

#include <string>

#include "pgmcml/mcml/design.hpp"
#include "pgmcml/spice/engine.hpp"

namespace pgmcml::mcml {

struct BiasResult {
  bool ok = false;
  std::string error;
  double vn = 0.0;            ///< solved tail bias [V]
  double vp = 0.0;            ///< solved load bias [V]
  double achieved_iss = 0.0;  ///< replica tail current at the solution [A]
  double achieved_vsw = 0.0;  ///< buffer output swing at the solution [V]
};

/// Solves both bias voltages and writes them into `design`.
/// The replica accounts for the sleep transistor when the design is gated
/// (the PG cell needs a slightly higher Vn -- Section 5's observation that
/// "the minimal supply voltage and the current source are slightly
/// increased").
BiasResult solve_bias(McmlDesign& design);

/// Tail current of the (possibly gated) tail stack at a given Vn, with the
/// common node clamped to a representative voltage.
double replica_tail_current(const McmlDesign& design, double vn,
                            double v_common = 0.3);

/// Output swing of a DC-driven buffer at a given (vn, vp).
double replica_buffer_swing(const McmlDesign& design, double vn, double vp);

/// Workspace-reusing variants.  Each bisection in solve_bias evaluates the
/// same replica topology dozens of times; sharing a workspace lets every
/// evaluation after the first skip the symbolic analysis and reuse the
/// solver's buffers (the replica circuit itself is still rebuilt, but the
/// expensive part of the solve is structure-keyed, not circuit-keyed).
double replica_tail_current(const McmlDesign& design, double vn,
                            double v_common, spice::NewtonWorkspace& ws);
double replica_buffer_swing(const McmlDesign& design, double vn, double vp,
                            spice::NewtonWorkspace& ws);

}  // namespace pgmcml::mcml
