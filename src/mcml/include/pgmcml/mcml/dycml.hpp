// Dynamic Current Mode Logic (DyCML) -- the related-work alternative of
// Allam & Elmasry (JSSC 2001) that the paper compares its approach against
// in Section 2: instead of a static tail current, DyCML evaluates with a
// *dynamic current pulse* drawn into a virtual-ground capacitor, so power is
// consumed only by gates that are processing data (like dynamic logic), at
// the cost of a clocked precharge phase and a current-source generation
// scheme the paper calls impractical for advanced nodes / EDA flows.
//
// The buffer here follows the canonical DyCML structure: precharge PMOS
// pair on the outputs, the differential NMOS network, a clocked evaluation
// footer discharging into a virtual-ground capacitor (self-limiting current
// pulse), plus a small cross-coupled keeper.
#pragma once

#include <string>

#include "pgmcml/mcml/builder.hpp"
#include "pgmcml/mcml/design.hpp"
#include "pgmcml/spice/circuit.hpp"

namespace pgmcml::mcml {

struct DycmlDesign {
  spice::Technology tech{};
  double w_pair = 1.0e-6;
  double w_precharge = 0.8e-6;
  double w_footer = 1.5e-6;
  double w_keeper = 0.3e-6;
  double c_virtual_gnd = 8e-15;  ///< virtual-ground tank [F]
  bool include_parasitics = true;
};

/// Emits a DyCML buffer into `circuit`.  `clk` is single-ended (precharge
/// low / evaluate high).  Returns the differential output.
DiffNet build_dycml_buffer(spice::Circuit& circuit, const DycmlDesign& design,
                           spice::NodeId vdd, spice::NodeId clk, DiffNet in,
                           const std::string& prefix);

struct DycmlCharacterization {
  bool ok = false;
  std::string error;
  double delay = 0.0;          ///< clk-to-output evaluation delay [s]
  double energy_per_op = 0.0;  ///< supply energy per evaluate cycle [J]
  double idle_current = 0.0;   ///< static draw between operations [A]
  int transistors = 0;
};

/// Transistor-level characterization of the DyCML buffer over a few
/// precharge/evaluate cycles.
DycmlCharacterization characterize_dycml_buffer(const DycmlDesign& design = {});

}  // namespace pgmcml::mcml
