// The 16-cell PG-MCML library: cell identities and layout metadata.
//
// The pitch counts are the library's layout data (the paper's cells are on
// a fixed-height row with a fixed horizontal pitch; every area in Tables 1
// and 2 is an integer number of pitches).  The PG variant keeps the pitch
// count but widens the pitch by 19/18 to absorb the sleep transistor, which
// reproduces the uniform ~5.6 % ("approximately 6 %") PG overhead of
// Table 1.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace pgmcml::mcml {

enum class CellKind {
  kBuf,          // buffer / inverter (free complement)
  kDiff2Single,  // differential-to-single-ended converter
  kAnd2,
  kAnd3,
  kAnd4,
  kMux2,
  kMux4,
  kMaj3,         // majority-of-3 (MAJ32)
  kXor2,
  kXor3,
  kXor4,
  kDLatch,
  kDff,
  kDffR,         // DFF with reset
  kEDff,         // DFF with enable
  kFullAdder,
};

/// All sixteen members of the library, in Table 2 order.
const std::vector<CellKind>& all_cells();

struct CellInfo {
  CellKind kind;
  std::string name;        ///< library name, e.g. "AND4"
  int num_inputs;          ///< logical data inputs (excluding clk/reset/en)
  int num_clocks;          ///< clock-like inputs (clk)
  int num_controls;        ///< reset / enable inputs
  int num_stages;          ///< CML stages (= tail current sources) in the cell
  int pitch_count;         ///< layout width in pitches (area data)
  bool sequential;
  /// Paper Table 2 "MCML area / CMOS area" ratio, when listed.
  std::optional<double> cmos_area_ratio;
  /// Paper Table 2 reference delay [s] (for EXPERIMENTS.md comparison).
  double paper_delay;
  /// Paper Table 2 PG-MCML area [m^2] (for cross-checking the area model).
  double paper_pg_area;
};

const CellInfo& cell_info(CellKind kind);
const CellInfo* find_cell(const std::string& name);
std::string to_string(CellKind kind);

/// Total transistor count of one cell (network + loads + tails [+ sleep]).
int transistor_count(CellKind kind, bool power_gated);

}  // namespace pgmcml::mcml
