// Cell characterization: builds a transistor-level testbench around one cell
// (bias rails, differential stimulus, fan-out loads), runs the SPICE engine,
// and extracts the library figures: propagation delay, output swing, awake
// static current, gated-off leakage, and wake-up time.  This is the engine
// behind Table 2, Fig. 3 and the gating-topology ablation.
//
// Characterization results are content-cached: when the process-wide
// pgmcml::cache::ResultCache is enabled (PGMCML_CACHE_DIR), characterize_cell
// and characterize_buffer_at first look their full design point up by a
// stable 128-bit key and return the stored result -- bitwise identical to a
// fresh solve, diagnostics included -- without touching the SPICE engine.
// Designs carrying a mismatch_rng bypass the cache (the draw is not part of
// the key); Monte-Carlo caching keys on (seed, sample) instead, see
// montecarlo.cpp.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "pgmcml/cache/key.hpp"
#include "pgmcml/mcml/builder.hpp"
#include "pgmcml/mcml/design.hpp"
#include "pgmcml/obs/json.hpp"
#include "pgmcml/spice/engine.hpp"

namespace pgmcml::mcml {

struct CellCharacterization {
  CellKind kind = CellKind::kBuf;
  bool ok = false;
  std::string error;
  double delay = 0.0;           ///< propagation delay at the given fan-out [s]
  double swing = 0.0;           ///< measured differential output swing [V]
  double static_current = 0.0;  ///< awake quiescent supply current [A]
  double static_power = 0.0;    ///< Vdd * static_current [W]
  double sleep_current = 0.0;   ///< supply current with the cell gated off [A]
  double wake_time = 0.0;       ///< sleep->valid-output time [s] (gated only)
  int transistors = 0;
  /// Per-cell solve outcomes: attempts, retries with tightened options,
  /// recoveries and skips, plus the engine-effort totals underneath.
  spice::FlowDiagnostics diagnostics;
};

/// Characterizes one cell of the library at the given design point.
/// Served from the result cache when it is enabled and the design carries
/// no mismatch_rng; a hit skips the bias solve and every transient.
CellCharacterization characterize_cell(CellKind kind, const McmlDesign& design,
                                       int fanout = 1);

/// Appends every result-determining field of `design` -- electrical targets,
/// sizing, gating topology, Vt flavours, and the full technology parameter
/// set -- to a cache key.  The canonical field order is part of the key
/// contract; the mismatch_rng pointer is deliberately excluded (callers that
/// use it must key the draw themselves or bypass the cache).
void add_design_to_key(cache::KeyBuilder& kb, const McmlDesign& design);

/// Appends the complete technology description (name, corner label, rails,
/// Pelgrom coefficients, and all four device models field by field) to a
/// cache key.  This is the canonical technology digest: two technologies
/// produce the same contribution iff every parameter is bitwise equal, so
/// config-driven runs stay content-addressed -- the checked-in default
/// config keys identically to the compiled-in corner, and a FinFET-like
/// corner set keys differently.
void add_technology_to_key(cache::KeyBuilder& kb,
                           const spice::Technology& tech);

/// Exact JSON form of a characterization (cache payload).
obs::json::Value to_json(const CellCharacterization& ch);
/// Inverse of to_json; nullopt when the document does not have the expected
/// shape (the caller treats that as a cache miss and recomputes).
std::optional<CellCharacterization> characterization_from_json(
    const obs::json::Value& v);

/// One point of the Fig. 3 buffer design-space exploration.
struct BufferSweepPoint {
  bool ok = false;
  std::string error;       ///< structured failure description when !ok
  double iss = 0.0;        ///< tail current [A]
  double vn = 0.0;
  double vp = 0.0;
  double delay_fo1 = 0.0;  ///< buffer delay, fan-out 1 [s]
  double delay_fo4 = 0.0;  ///< buffer delay, fan-out 4 [s]
  double power = 0.0;      ///< static power Vdd*Iss [W]
  double area = 0.0;       ///< area model including Iss-dependent sizing [m^2]
  double power_delay() const { return power * delay_fo4; }
  double area_delay() const { return area * delay_fo4; }
  /// Per-point solve outcomes (retries/recoveries/skips).
  spice::FlowDiagnostics diagnostics;
};

/// Re-biases and re-characterizes the buffer at a given tail current
/// (device widths scale with Iss above the base point, as a designer would
/// resize the tail/pairs to keep overdrives constant).  Cached per
/// (base design, iss) point when the result cache is enabled.
BufferSweepPoint characterize_buffer_at(const McmlDesign& base, double iss);

/// Exact JSON form of a sweep point (cache payload).
obs::json::Value to_json(const BufferSweepPoint& pt);
/// Inverse of to_json; nullopt on an unexpected shape.
std::optional<BufferSweepPoint> sweep_point_from_json(
    const obs::json::Value& v);

/// Characterizes the buffer at every tail current in `currents` (the Fig. 3
/// design-space sweep).  Points are mutually independent, so they run on the
/// parallel-execution layer; the result order matches `currents` and is
/// bitwise identical at any thread count.
std::vector<BufferSweepPoint> sweep_buffer_bias(
    const McmlDesign& base, const std::vector<double>& currents);

/// Quiescent supply current of one held input state (the transistor-level
/// ground truth behind the static-power side channel).
struct StateLeakagePoint {
  int state = 0;  ///< input bitmask the cell was held in
  bool ok = false;
  std::string error;
  double awake_current = 0.0;   ///< DC supply current, cell powered [A]
  double asleep_current = 0.0;  ///< DC supply current, cell gated off [A]
};

struct StateLeakageResult {
  CellKind kind = CellKind::kBuf;
  std::vector<StateLeakagePoint> points;  ///< one per input state, ascending
  /// max - min awake current over the converged states: the state signal a
  /// static-power attack integrates.  Zero when nothing converged.
  double awake_spread = 0.0;
  /// Same for the gated-off state (non-gated designs repeat awake_current
  /// here).  The paper's power-gating argument, measured: this collapses
  /// toward zero for a gated cell.
  double asleep_spread = 0.0;
  spice::FlowDiagnostics diagnostics;
};

/// Holds the cell in every input state (2^num_inputs DC solves, awake and --
/// when the design gates -- asleep) and measures the VDD current of each.
/// This is the leakage-measurement hook the block-level quiescent model
/// (power::PowerTracer::quiescent_current) is calibrated against: awake
/// leakage is state-dependent, gated-off leakage is not.  Sequential cells
/// are measured with the clock held high.
///
/// `mismatch_seed` = 0 measures the ideal (perfectly matched) cell, whose
/// legs are symmetric by construction -- the awake spread is then zero.
/// A nonzero seed freezes ONE process-variation draw and re-applies it to
/// every solve, i.e. one die instance measured across its states: this is
/// where the state dependence (and the static-power side channel) comes
/// from, exactly as in the block-level model's residual_ term.
StateLeakageResult measure_state_leakage(CellKind kind,
                                         const McmlDesign& design,
                                         std::uint64_t mismatch_seed = 0);

/// Reusable testbench: cell + rails + stimulus, for tests and benches that
/// need waveform-level access.
/// Testbench construction options.  `sleep_pulse` replaces the DC-awake
/// sleep rail by a 0->1 transition at `sleep_rise_time` (for wake-up
/// measurements); `asleep` holds the cell gated off for leakage tests.
struct TestbenchOptions {
  int fanout = 1;
  bool asleep = false;
  bool sleep_pulse = false;
  double sleep_rise_time = 1e-9;
  /// When >= 0, bit i of this mask holds data input i at a DC level instead
  /// of the stimulus plan (the clock, if any, is held high).  This is the
  /// state-held testbench behind measure_state_leakage: no transient
  /// stimulus, just the cell frozen in one input state for a DC solve.
  int hold_state = -1;
};

class McmlTestbench {
 public:
  McmlTestbench(CellKind kind, const McmlDesign& design,
                TestbenchOptions options = {});

  /// Runs a transient over the standard stimulus window.  `tightened`
  /// re-runs with halved dt_max and a doubled Newton budget — the one-shot
  /// retry flow layers issue after a failed first attempt.  All solves of
  /// one testbench share its Newton workspace: the circuit topology is
  /// fixed at construction, so the retry (and any DC check) reuses the
  /// first run's symbolic analysis.
  spice::TranResult run(bool tightened = false);
  /// DC solve only (for leakage / swing checks).
  spice::DcResult run_dc();

  spice::Circuit& circuit() { return circuit_; }
  const std::vector<DiffNet>& outputs() const { return outputs_; }
  DiffNet toggling_input() const { return toggle_in_; }
  double t_stop() const { return t_stop_; }
  /// Time of the reference input (or clock) transitions, 50% points.
  std::vector<double> stimulus_edges() const { return stimulus_edges_; }
  bool sequential() const { return sequential_; }
  int stages() const { return stages_; }
  int mosfets() const { return mosfets_; }

  /// Supply-current waveform of the last run.
  util::Waveform supply_current(const spice::TranResult& tr) const;
  /// Differential output voltage of the last run (primary output).
  util::Waveform diff_output(const spice::TranResult& tr, int index = 0) const;

 private:
  void build(CellKind kind, const McmlDesign& design,
             const TestbenchOptions& options);

  spice::Circuit circuit_;
  spice::NewtonWorkspace workspace_;
  McmlDesign design_;
  std::vector<DiffNet> outputs_;
  DiffNet toggle_in_;
  std::vector<double> stimulus_edges_;
  double t_stop_ = 0.0;
  bool sequential_ = false;
  bool single_ended_out_ = false;
  int stages_ = 0;
  int mosfets_ = 0;
};

}  // namespace pgmcml::mcml
