// Layout-area model for the library.
//
// Cells live on a fixed-height standard-cell row; a cell's width is an
// integer number of horizontal pitches (the pitch counts are layout data in
// cells.hpp).  Conventional MCML uses the base pitch; the PG variant widens
// the pitch by 19/18 to absorb the sleep transistor, which shares the tail
// transistor's diffusion (Section 4/5 of the paper).  This reproduces the
// uniform ~5.6 % PG-vs-MCML overhead of Table 1 and the absolute areas of
// Table 2.  The CMOS-equivalent areas come from Table 2's published
// MCML/CMOS ratios.
#pragma once

#include <optional>

#include "pgmcml/mcml/cells.hpp"

namespace pgmcml::mcml {

class AreaModel {
 public:
  /// Standard-cell row height [m].
  double cell_height() const { return 2.52e-6; }
  /// Horizontal pitch of conventional MCML cells [m].
  double mcml_pitch() const { return 0.56e-6; }
  /// Horizontal pitch of PG-MCML cells [m] (wider by 19/18).
  double pg_pitch() const { return mcml_pitch() * 19.0 / 18.0; }

  /// Cell area [m^2] for a conventional MCML implementation.
  double mcml_area(CellKind kind) const;
  /// Cell area [m^2] for the power-gated implementation.
  double pg_area(CellKind kind) const;
  /// Area of the equivalent cell in the commercial 90 nm CMOS library,
  /// derived from the published area ratios; nullopt when the paper lists
  /// no CMOS counterpart (DIFF2SINGLE, MAJ32, EDFF).
  std::optional<double> cmos_area(CellKind kind) const;

  /// Relative PG-over-MCML area overhead (same for every cell).
  double pg_overhead() const { return 19.0 / 18.0 - 1.0; }

  /// Drive-strength scaling: an X`k` cell is wider.  The paper's X4 buffer
  /// roughly triples the X1 footprint; we model width' = 1 + 0.75*(k-1).
  double drive_scale(double drive) const { return 1.0 + 0.75 * (drive - 1.0); }

  /// Heuristic pitch estimate from transistor count (cross-check only; the
  /// committed layout data is cell_info().pitch_count).
  int estimate_pitches(CellKind kind, bool power_gated) const;
};

}  // namespace pgmcml::mcml
