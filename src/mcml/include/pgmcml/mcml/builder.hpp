// Transistor-level netlist generators for the MCML / PG-MCML cells.
//
// Every cell is a composition of CML *stages*.  A stage is one tail current
// source plus up to two levels of series-gated NMOS differential pairs under
// a pair of PMOS triode loads -- the classic MCML structure of Fig. 1.  The
// power-gating network under the tail follows the selected topology from
// Fig. 2 (the library default is (d): a sleep transistor in series on top of
// the current source, sized like the tail device so both share a diffusion).
//
// Because the logic is fully differential, complementation is free: an
// inverted signal is just the swapped net pair (`invert`), and OR2 is AND2
// with complemented inputs and outputs (De Morgan).  This is the property
// that keeps MCML cell counts low during technology mapping.
#pragma once

#include <string>
#include <vector>

#include "pgmcml/mcml/cells.hpp"
#include "pgmcml/mcml/design.hpp"
#include "pgmcml/spice/circuit.hpp"

namespace pgmcml::mcml {

/// A differential net: p carries the true phase, n the complement.
struct DiffNet {
  spice::NodeId p = -1;
  spice::NodeId n = -1;
  bool valid() const { return p >= 0 && n >= 0; }
};

/// Free complement: swap the phases.
inline DiffNet invert(DiffNet x) { return {x.n, x.p}; }

/// Supply / bias / control rails shared by all cells on a row.
struct McmlRails {
  spice::NodeId vdd = -1;
  spice::NodeId vp = -1;        ///< PMOS load gate bias
  spice::NodeId vn = -1;        ///< tail gate bias
  spice::NodeId sleep_on = -1;  ///< high = cell awake (sleep transistor on)
  spice::NodeId sleep_off = -1; ///< complement, used by topologies (a)/(b)
};

/// Result of emitting one cell.
struct CellPorts {
  std::vector<DiffNet> outputs;  ///< [q] or [sum, cout] for the full adder
};

class McmlCellBuilder {
 public:
  McmlCellBuilder(spice::Circuit& circuit, const McmlDesign& design,
                  McmlRails rails, std::string prefix);

  /// Creates a named differential net pair `<prefix><name>_p/_n`.
  DiffNet make_diff(const std::string& name);

  // --- individual stages (each adds one tail + gating network) -------------
  DiffNet buffer_stage(DiffNet in);
  DiffNet and2_stage(DiffNet a, DiffNet b);
  DiffNet or2_stage(DiffNet a, DiffNet b);
  DiffNet xor2_stage(DiffNet a, DiffNet b);
  /// q = sel ? in1 : in0.
  DiffNet mux2_stage(DiffNet sel, DiffNet in0, DiffNet in1);
  /// Level-sensitive latch, transparent while clk is high.
  DiffNet latch_stage(DiffNet d, DiffNet clk);
  /// Differential-to-single-ended converter; returns a CMOS-level node.
  spice::NodeId d2s_stage(DiffNet in);

  // --- whole cells -----------------------------------------------------------
  /// Emits `kind`.  `data` carries the logical inputs (a, b, c, d / sel+data
  /// for muxes / d for flops), `clk` the clock where applicable, `ctrl` the
  /// reset or enable where applicable.
  CellPorts emit_cell(CellKind kind, const std::vector<DiffNet>& data,
                      DiffNet clk = {}, DiffNet ctrl = {});

  int stages_emitted() const { return stage_counter_; }
  int mosfets_emitted() const { return mosfet_counter_; }
  const McmlDesign& design() const { return design_; }

 private:
  /// Adds a MOSFET plus (optionally) its parasitic capacitances.
  void add_mos(const std::string& name, spice::NodeId d, spice::NodeId g,
               spice::NodeId s, spice::NodeId b, const spice::MosParams& p);
  /// Adds the two PMOS loads of a stage onto (out.p, out.n).
  void add_loads(const std::string& stage, DiffNet out);
  /// Builds the tail current source + power-gating network of one stage and
  /// returns the node the differential network's common source connects to.
  spice::NodeId tail_network(const std::string& stage);
  std::string stage_name(const std::string& kind);

  spice::Circuit& ckt_;
  McmlDesign design_;
  McmlRails rails_;
  std::string prefix_;
  int stage_counter_ = 0;
  int mosfet_counter_ = 0;
};

}  // namespace pgmcml::mcml
