// Monte-Carlo characterization: re-runs the transistor-level cell
// characterization with Pelgrom mismatch applied to every device, giving
// the library's process-variation distributions (delay sigma, tail-current
// spread, swing spread).  This is the analysis behind the paper's remark
// that passive load resistors vary 20-30 % while active loads are tunable,
// and behind sizing the tail for current accuracy.
#pragma once

#include <cstdint>

#include "pgmcml/mcml/characterize.hpp"
#include "pgmcml/mcml/design.hpp"
#include "pgmcml/util/stats.hpp"

namespace pgmcml::mcml {

struct MonteCarloResult {
  int samples = 0;
  int failures = 0;  ///< non-converged / non-functional samples
  util::RunningStats delay;
  util::RunningStats static_current;
  util::RunningStats swing;
  util::RunningStats sleep_current;
  /// Aggregated per-sample solve outcomes (attempts, retries with tightened
  /// options, recoveries, skips), merged in sample order so the aggregate is
  /// identical at any thread count.
  spice::FlowDiagnostics diagnostics;
};

/// Characterizes `kind` `n` times with fresh mismatch draws.  The mismatch
/// is injected by perturbing every generated device's Vth/kp according to
/// the technology's Pelgrom coefficients (Technology::with_mismatch).
MonteCarloResult monte_carlo_characterize(CellKind kind,
                                          const McmlDesign& design, int n,
                                          std::uint64_t seed = 1234);

}  // namespace pgmcml::mcml
