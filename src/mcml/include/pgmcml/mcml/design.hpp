// Design-point description for MCML / PG-MCML cells.
//
// An McmlDesign bundles everything a cell generator needs: the technology,
// the electrical targets (tail current Iss and output swing Vsw), the device
// sizing rules, and the power-gating topology.  The defaults correspond to
// the paper's chosen operating point: Iss = 50 uA (the area-delay optimum of
// Fig. 3b), Vsw = 0.4 V, high-Vt NMOS network/tail/sleep devices and low-Vt
// PMOS loads (Section 5).
#pragma once

#include <string>

#include "pgmcml/spice/technology.hpp"
#include "pgmcml/util/rng.hpp"

namespace pgmcml::mcml {

/// Power-gating topology, after Fig. 2 of the paper.
enum class GatingTopology {
  kNone,        ///< conventional MCML, no sleep device
  kVnPullDown,  ///< (a) transistor pulls the bias node Vn to ground
  kVnSwitch,    ///< (b) series pass device on Vn plus pull-down (2 devices)
  kBodyBias,    ///< (c) ON signal on the tail gate, bulk tied to Vn
  kSeriesSleep, ///< (d) sleep transistor in series on top of the tail (chosen)
};

std::string to_string(GatingTopology t);

struct McmlDesign {
  spice::Technology tech{};

  // Electrical targets.
  double iss = 50e-6;  ///< tail current [A]
  double vsw = 0.4;    ///< differential output swing [V]

  // Bias voltages; normally filled in by solve_bias().
  double vn = 0.55;  ///< tail gate bias [V]
  double vp = 0.70;  ///< PMOS load gate bias [V]

  // Device sizing (drive strength X1).  The sleep transistor shares the tail
  // transistor's channel width so the two share one diffusion region
  // (Section 5 of the paper).
  double w_pair = 1.0e-6;   ///< differential-pair device width [m]
  double w_tail = 2.0e-6;   ///< tail current-source width [m]
  double w_load = 0.4e-6;   ///< PMOS load width [m]
  double l_tail = 0.2e-6;   ///< tail length (longer for current accuracy) [m]

  /// Drive-strength multiplier (X1 = 1, X4 = 4): scales Iss and all widths.
  double drive = 1.0;

  GatingTopology gating = GatingTopology::kSeriesSleep;

  /// Vt assignment per the paper: high-Vt for the NMOS network, tail and
  /// sleep device (leakage), low-Vt for the PMOS loads (area/speed).
  spice::VtFlavor network_vt = spice::VtFlavor::kHighVt;
  spice::VtFlavor load_vt = spice::VtFlavor::kLowVt;

  /// Emit device parasitic capacitances as explicit elements.
  bool include_parasitics = true;

  /// When set, every generated device receives a fresh Pelgrom-mismatch
  /// draw from this stream (Monte-Carlo characterization).  Not owned.
  util::Rng* mismatch_rng = nullptr;

  double w_sleep() const { return w_tail; }
  bool power_gated() const { return gating != GatingTopology::kNone; }

  /// Scaled copy for another drive strength.
  McmlDesign at_drive(double k) const {
    McmlDesign d = *this;
    d.drive = k;
    return d;
  }
  /// Scaled copy for another tail current (Fig. 3 sweeps).
  McmlDesign at_iss(double new_iss) const {
    McmlDesign d = *this;
    d.iss = new_iss;
    return d;
  }

  // Effective (drive-scaled) values used by the builder.
  double eff_iss() const { return iss * drive; }
  double eff_w_pair() const { return w_pair * drive; }
  double eff_w_tail() const { return w_tail * drive; }
  double eff_w_load() const { return w_load * drive; }

  /// MCML logic levels: a logic high is Vdd, a logic low is Vdd - Vsw.
  double v_high() const { return tech.vdd(); }
  double v_low() const { return tech.vdd() - vsw; }
  double v_mid() const { return tech.vdd() - 0.5 * vsw; }
};

}  // namespace pgmcml::mcml
