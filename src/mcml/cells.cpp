#include "pgmcml/mcml/cells.hpp"

#include <stdexcept>
#include <unordered_map>

#include "pgmcml/util/units.hpp"

namespace pgmcml::mcml {
namespace {

using util::ps;
using util::um2;

/// Library metadata, Table 2 order.  pitch_count is the layout width of the
/// cell in horizontal pitches; every paper area is pitch_count x pitch_area
/// (see area.hpp).  paper_delay / paper_pg_area are the published reference
/// values used in EXPERIMENTS.md comparisons.
const std::vector<CellInfo>& table() {
  static const std::vector<CellInfo> kCells = {
      // kind, name, in, clk, ctl, stages, pitches, seq, ratio, delay, area
      {CellKind::kBuf, "BUF", 1, 0, 0, 1, 5, false, 2.4, 23.97 * ps,
       7.448 * um2},
      {CellKind::kDiff2Single, "DIFF2SINGLE", 1, 0, 0, 1, 6, false,
       std::nullopt, 80.41 * ps, 8.9376 * um2},
      {CellKind::kAnd2, "AND2", 2, 0, 0, 1, 6, false, 1.9, 41.34 * ps,
       8.9376 * um2},
      {CellKind::kAnd3, "AND3", 3, 0, 0, 2, 9, false, 2.1, 68.74 * ps,
       13.4064 * um2},
      {CellKind::kAnd4, "AND4", 4, 0, 0, 3, 12, false, 2.8, 99.96 * ps,
       17.8752 * um2},
      {CellKind::kMux2, "MUX2", 3, 0, 0, 1, 6, false, 1.2, 43.58 * ps,
       8.9376 * um2},
      {CellKind::kMux4, "MUX4", 6, 0, 0, 3, 14, false, 1.2, 87.11 * ps,
       20.8544 * um2},
      {CellKind::kMaj3, "MAJ32", 3, 0, 0, 3, 12, false, std::nullopt,
       82.32 * ps, 17.8752 * um2},
      {CellKind::kXor2, "XOR2", 2, 0, 0, 1, 6, false, 1.1, 44.26 * ps,
       8.9376 * um2},
      {CellKind::kXor3, "XOR3", 3, 0, 0, 2, 12, false, 1.1, 84.37 * ps,
       17.8752 * um2},
      {CellKind::kXor4, "XOR4", 4, 0, 0, 3, 14, false, 1.1, 109.68 * ps,
       20.8544 * um2},
      {CellKind::kDLatch, "DLATCH", 1, 1, 0, 1, 6, true, 1.3, 36.32 * ps,
       8.9376 * um2},
      {CellKind::kDff, "DFF", 1, 1, 0, 2, 12, true, 1.3, 53.40 * ps,
       17.8752 * um2},
      {CellKind::kDffR, "DFFR", 1, 1, 1, 3, 18, true, 1.8, 69.33 * ps,
       26.8128 * um2},
      {CellKind::kEDff, "EDFF", 1, 1, 1, 3, 16, true, std::nullopt,
       63.53 * ps, 23.8336 * um2},
      {CellKind::kFullAdder, "FA", 3, 0, 0, 4, 24, false, 1.4, 84.49 * ps,
       35.7504 * um2},
  };
  return kCells;
}

}  // namespace

const std::vector<CellKind>& all_cells() {
  static const std::vector<CellKind> kAll = [] {
    std::vector<CellKind> v;
    for (const CellInfo& c : table()) v.push_back(c.kind);
    return v;
  }();
  return kAll;
}

const CellInfo& cell_info(CellKind kind) {
  for (const CellInfo& c : table()) {
    if (c.kind == kind) return c;
  }
  throw std::invalid_argument("cell_info: unknown cell kind");
}

const CellInfo* find_cell(const std::string& name) {
  for (const CellInfo& c : table()) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::string to_string(CellKind kind) { return cell_info(kind).name; }

}  // namespace pgmcml::mcml
