#include "pgmcml/mcml/builder.hpp"

#include <stdexcept>

namespace pgmcml::mcml {

using spice::MosParams;
using spice::NodeId;

McmlCellBuilder::McmlCellBuilder(spice::Circuit& circuit,
                                 const McmlDesign& design, McmlRails rails,
                                 std::string prefix)
    : ckt_(circuit), design_(design), rails_(rails), prefix_(std::move(prefix)) {
  if (rails_.vdd < 0 || rails_.vp < 0 || rails_.vn < 0) {
    throw std::invalid_argument("McmlCellBuilder: rails not connected");
  }
  if (design_.power_gated() && rails_.sleep_on < 0) {
    throw std::invalid_argument(
        "McmlCellBuilder: power-gated design needs a sleep_on rail");
  }
}

DiffNet McmlCellBuilder::make_diff(const std::string& name) {
  return {ckt_.node(prefix_ + name + "_p"), ckt_.node(prefix_ + name + "_n")};
}

std::string McmlCellBuilder::stage_name(const std::string& kind) {
  return prefix_ + kind + std::to_string(stage_counter_++);
}

void McmlCellBuilder::add_mos(const std::string& name, NodeId d, NodeId g,
                              NodeId s, NodeId b, const MosParams& p) {
  const MosParams actual =
      design_.mismatch_rng != nullptr
          ? design_.tech.with_mismatch(p, *design_.mismatch_rng)
          : p;
  ckt_.add_mosfet(name, d, g, s, b, actual);
  ++mosfet_counter_;
  if (design_.include_parasitics) {
    ckt_.add_capacitor(name + ".cgs", g, s, actual.cgs());
    ckt_.add_capacitor(name + ".cgd", g, d, actual.cgd());
    ckt_.add_capacitor(name + ".cdb", d, ckt_.gnd(), actual.cdb());
  }
}

void McmlCellBuilder::add_loads(const std::string& stage, DiffNet out) {
  const MosParams load =
      design_.tech.pmos(design_.load_vt, design_.eff_w_load());
  add_mos(stage + ".MLP", out.p, rails_.vp, rails_.vdd, rails_.vdd, load);
  add_mos(stage + ".MLN", out.n, rails_.vp, rails_.vdd, rails_.vdd, load);
}

NodeId McmlCellBuilder::tail_network(const std::string& stage) {
  const MosParams tail =
      design_.tech.nmos(design_.network_vt, design_.eff_w_tail(), design_.l_tail);
  const NodeId gnd = ckt_.gnd();

  switch (design_.gating) {
    case GatingTopology::kNone: {
      // Plain current source: common node is the tail drain.
      const NodeId cs = ckt_.internal_node(stage + ".cs");
      add_mos(stage + ".MT", cs, rails_.vn, gnd, gnd, tail);
      return cs;
    }
    case GatingTopology::kSeriesSleep: {
      // (d) Sleep transistor on top of the current source.  During power
      // down its gate is at 0 while the source node below holds a residual
      // positive voltage -> negative VGS, cutting leakage hard.
      const MosParams sleep =
          design_.tech.nmos(design_.network_vt, design_.w_sleep() * design_.drive);
      const NodeId cs = ckt_.internal_node(stage + ".cs");
      const NodeId mid = ckt_.internal_node(stage + ".slp");
      add_mos(stage + ".MSLP", cs, rails_.sleep_on, mid, gnd, sleep);
      add_mos(stage + ".MT", mid, rails_.vn, gnd, gnd, tail);
      return cs;
    }
    case GatingTopology::kVnPullDown: {
      // (a) The cell's local bias node hangs off the global Vn through a
      // finite source impedance (the source-follower the paper says would
      // be needed); a pull-down shorts the local node to ground in sleep.
      const NodeId vn_loc = ckt_.internal_node(stage + ".vnl");
      ckt_.add_resistor(stage + ".RVN", rails_.vn, vn_loc, 50e3);
      ckt_.add_capacitor(stage + ".CVN", vn_loc, gnd, 5e-15);
      const MosParams pd = design_.tech.nmos(design_.network_vt, 0.5e-6);
      add_mos(stage + ".MPD", vn_loc, rails_.sleep_off, gnd, gnd, pd);
      const NodeId cs = ckt_.internal_node(stage + ".cs");
      MosParams t2 = tail;
      add_mos(stage + ".MT", cs, vn_loc, gnd, gnd, t2);
      return cs;
    }
    case GatingTopology::kVnSwitch: {
      // (b) Pass transistor gating Vn plus the pull-down: two devices.
      const NodeId vn_loc = ckt_.internal_node(stage + ".vnl");
      const MosParams pass = design_.tech.nmos(design_.network_vt, 1.0e-6);
      add_mos(stage + ".MPS", rails_.vn, rails_.sleep_on, vn_loc, gnd, pass);
      ckt_.add_capacitor(stage + ".CVN", vn_loc, gnd, 5e-15);
      const MosParams pd = design_.tech.nmos(design_.network_vt, 0.5e-6);
      add_mos(stage + ".MPD", vn_loc, rails_.sleep_off, gnd, gnd, pd);
      const NodeId cs = ckt_.internal_node(stage + ".cs");
      add_mos(stage + ".MT", cs, vn_loc, gnd, gnd, tail);
      return cs;
    }
    case GatingTopology::kBodyBias: {
      // (c) ON signal drives the tail gate directly; the bulk is tied to
      // Vn and modulates the current through the body effect.  The tail is
      // long and narrow so the full-swing gate still means ~Iss.  Note the
      // separate-well / bias-range problems the paper cites.
      const MosParams t2 = design_.tech.nmos(design_.network_vt,
                                             0.60e-6 * design_.drive, 1.0e-6);
      const NodeId cs = ckt_.internal_node(stage + ".cs");
      add_mos(stage + ".MT", cs, rails_.sleep_on, gnd, rails_.vn, t2);
      return cs;
    }
  }
  throw std::logic_error("unreachable gating topology");
}

DiffNet McmlCellBuilder::buffer_stage(DiffNet in) {
  const std::string st = stage_name("buf");
  DiffNet out = make_diff(st + ".q");
  add_loads(st, out);
  const NodeId cs = tail_network(st);
  const MosParams pair =
      design_.tech.nmos(design_.network_vt, design_.eff_w_pair());
  const NodeId gnd = ckt_.gnd();
  // High input steers the current into the complementary output's load.
  add_mos(st + ".M1", out.n, in.p, cs, gnd, pair);
  add_mos(st + ".M2", out.p, in.n, cs, gnd, pair);
  return out;
}

DiffNet McmlCellBuilder::and2_stage(DiffNet a, DiffNet b) {
  const std::string st = stage_name("and");
  DiffNet out = make_diff(st + ".q");
  add_loads(st, out);
  const NodeId cs = tail_network(st);
  const MosParams pair =
      design_.tech.nmos(design_.network_vt, design_.eff_w_pair());
  const NodeId gnd = ckt_.gnd();
  // Level 1 (bottom): pair driven by a.  The a-true branch feeds the upper
  // pair; the a-false branch pulls q low directly.
  const NodeId s2 = ckt_.internal_node(st + ".s2");
  add_mos(st + ".MA", s2, a.p, cs, gnd, pair);
  add_mos(st + ".MAB", out.p, a.n, cs, gnd, pair);
  // Level 2 (top): pair driven by b steering between q-low and qb-low.
  add_mos(st + ".MB", out.n, b.p, s2, gnd, pair);
  add_mos(st + ".MBB", out.p, b.n, s2, gnd, pair);
  return out;
}

DiffNet McmlCellBuilder::or2_stage(DiffNet a, DiffNet b) {
  // De Morgan on the differential pair: a + b = ~(~a & ~b).
  return invert(and2_stage(invert(a), invert(b)));
}

DiffNet McmlCellBuilder::xor2_stage(DiffNet a, DiffNet b) {
  const std::string st = stage_name("xor");
  DiffNet out = make_diff(st + ".q");
  add_loads(st, out);
  const NodeId cs = tail_network(st);
  const MosParams pair =
      design_.tech.nmos(design_.network_vt, design_.eff_w_pair());
  const NodeId gnd = ckt_.gnd();
  // Bottom pair driven by b selects one of two cross-wired a pairs.
  const NodeId s1 = ckt_.internal_node(st + ".s1");  // active when b = 1
  const NodeId s0 = ckt_.internal_node(st + ".s0");  // active when b = 0
  add_mos(st + ".MB", s1, b.p, cs, gnd, pair);
  add_mos(st + ".MBB", s0, b.n, cs, gnd, pair);
  // b = 1: q = ~a.
  add_mos(st + ".M1A", out.p, a.p, s1, gnd, pair);
  add_mos(st + ".M1AB", out.n, a.n, s1, gnd, pair);
  // b = 0: q = a.
  add_mos(st + ".M0A", out.n, a.p, s0, gnd, pair);
  add_mos(st + ".M0AB", out.p, a.n, s0, gnd, pair);
  return out;
}

DiffNet McmlCellBuilder::mux2_stage(DiffNet sel, DiffNet in0, DiffNet in1) {
  const std::string st = stage_name("mux");
  DiffNet out = make_diff(st + ".q");
  add_loads(st, out);
  const NodeId cs = tail_network(st);
  const MosParams pair =
      design_.tech.nmos(design_.network_vt, design_.eff_w_pair());
  const NodeId gnd = ckt_.gnd();
  const NodeId s1 = ckt_.internal_node(st + ".s1");
  const NodeId s0 = ckt_.internal_node(st + ".s0");
  add_mos(st + ".MS", s1, sel.p, cs, gnd, pair);
  add_mos(st + ".MSB", s0, sel.n, cs, gnd, pair);
  add_mos(st + ".M1", out.n, in1.p, s1, gnd, pair);
  add_mos(st + ".M1B", out.p, in1.n, s1, gnd, pair);
  add_mos(st + ".M0", out.n, in0.p, s0, gnd, pair);
  add_mos(st + ".M0B", out.p, in0.n, s0, gnd, pair);
  return out;
}

DiffNet McmlCellBuilder::latch_stage(DiffNet d, DiffNet clk) {
  const std::string st = stage_name("lat");
  DiffNet out = make_diff(st + ".q");
  add_loads(st, out);
  const NodeId cs = tail_network(st);
  const MosParams pair =
      design_.tech.nmos(design_.network_vt, design_.eff_w_pair());
  const NodeId gnd = ckt_.gnd();
  const NodeId s_track = ckt_.internal_node(st + ".st");
  const NodeId s_hold = ckt_.internal_node(st + ".sh");
  add_mos(st + ".MC", s_track, clk.p, cs, gnd, pair);
  add_mos(st + ".MCB", s_hold, clk.n, cs, gnd, pair);
  // Track: output follows d.
  add_mos(st + ".MD", out.n, d.p, s_track, gnd, pair);
  add_mos(st + ".MDB", out.p, d.n, s_track, gnd, pair);
  // Hold: cross-coupled regeneration.
  add_mos(st + ".MH", out.n, out.p, s_hold, gnd, pair);
  add_mos(st + ".MHB", out.p, out.n, s_hold, gnd, pair);
  return out;
}

spice::NodeId McmlCellBuilder::d2s_stage(DiffNet in) {
  // Five-transistor differential amplifier with a PMOS mirror load, followed
  // by a CMOS inverter to restore full-rail levels.
  const std::string st = stage_name("d2s");
  const NodeId cs = tail_network(st);
  const NodeId gnd = ckt_.gnd();
  const MosParams pair =
      design_.tech.nmos(design_.network_vt, design_.eff_w_pair() * 2.0);
  const MosParams mirror = design_.tech.pmos(design_.load_vt, 1.0e-6);
  const NodeId mid = ckt_.internal_node(st + ".mid");
  const NodeId amp = ckt_.internal_node(st + ".amp");
  add_mos(st + ".MIP", mid, in.n, cs, gnd, pair);
  add_mos(st + ".MIN", amp, in.p, cs, gnd, pair);
  add_mos(st + ".MM1", mid, mid, rails_.vdd, rails_.vdd, mirror);
  add_mos(st + ".MM2", amp, mid, rails_.vdd, rails_.vdd, mirror);
  // Output inverter (low-Vt CMOS).
  const NodeId out = ckt_.node(prefix_ + st + ".out");
  add_mos(st + ".MNI", out, amp, gnd, gnd,
          design_.tech.nmos(spice::VtFlavor::kLowVt, 0.6e-6));
  add_mos(st + ".MPI", out, amp, rails_.vdd, rails_.vdd,
          design_.tech.pmos(spice::VtFlavor::kLowVt, 1.2e-6));
  return out;
}

CellPorts McmlCellBuilder::emit_cell(CellKind kind,
                                     const std::vector<DiffNet>& data,
                                     DiffNet clk, DiffNet ctrl) {
  auto need = [&](std::size_t n) {
    if (data.size() != n) {
      throw std::invalid_argument("emit_cell(" + to_string(kind) + "): needs " +
                                  std::to_string(n) + " data inputs");
    }
  };
  auto need_clk = [&] {
    if (!clk.valid()) {
      throw std::invalid_argument("emit_cell(" + to_string(kind) +
                                  "): needs a clock");
    }
  };
  CellPorts ports;
  switch (kind) {
    case CellKind::kBuf: {
      need(1);
      ports.outputs = {buffer_stage(data[0])};
      break;
    }
    case CellKind::kDiff2Single: {
      need(1);
      const NodeId se = d2s_stage(data[0]);
      // Report the CMOS node as a pseudo-differential pair (n unused).
      ports.outputs = {DiffNet{se, -1}};
      break;
    }
    case CellKind::kAnd2: {
      need(2);
      ports.outputs = {and2_stage(data[0], data[1])};
      break;
    }
    case CellKind::kAnd3: {
      need(3);
      ports.outputs = {and2_stage(and2_stage(data[0], data[1]), data[2])};
      break;
    }
    case CellKind::kAnd4: {
      need(4);
      // Chained (not tree) realization: matches the paper's Table 2 delay
      // scaling (AND4 ~ 2.4x the AND2 delay).
      const DiffNet ab = and2_stage(data[0], data[1]);
      const DiffNet abc = and2_stage(ab, data[2]);
      ports.outputs = {and2_stage(abc, data[3])};
      break;
    }
    case CellKind::kMux2: {
      need(3);  // {sel, in0, in1}
      ports.outputs = {mux2_stage(data[0], data[1], data[2])};
      break;
    }
    case CellKind::kMux4: {
      need(6);  // {sel0, sel1, in0, in1, in2, in3}
      const DiffNet lo = mux2_stage(data[0], data[2], data[3]);
      const DiffNet hi = mux2_stage(data[0], data[4], data[5]);
      ports.outputs = {mux2_stage(data[1], lo, hi)};
      break;
    }
    case CellKind::kMaj3: {
      need(3);  // maj(a,b,c) = b ? (a|c) : (a&c)
      const DiffNet andac = and2_stage(data[0], data[2]);
      const DiffNet orac = or2_stage(data[0], data[2]);
      ports.outputs = {mux2_stage(data[1], andac, orac)};
      break;
    }
    case CellKind::kXor2: {
      need(2);
      ports.outputs = {xor2_stage(data[0], data[1])};
      break;
    }
    case CellKind::kXor3: {
      need(3);
      ports.outputs = {xor2_stage(xor2_stage(data[0], data[1]), data[2])};
      break;
    }
    case CellKind::kXor4: {
      need(4);
      // Chained, like AND4 (Table 2: XOR4 ~ 2.5x the XOR2 delay).
      const DiffNet ab = xor2_stage(data[0], data[1]);
      const DiffNet abc = xor2_stage(ab, data[2]);
      ports.outputs = {xor2_stage(abc, data[3])};
      break;
    }
    case CellKind::kDLatch: {
      need(1);
      need_clk();
      ports.outputs = {latch_stage(data[0], clk)};
      break;
    }
    case CellKind::kDff: {
      need(1);
      need_clk();
      // Master transparent while clk low, slave while clk high:
      // rising-edge triggered flip-flop.
      const DiffNet master = latch_stage(data[0], invert(clk));
      ports.outputs = {latch_stage(master, clk)};
      break;
    }
    case CellKind::kDffR: {
      need(1);
      need_clk();
      if (!ctrl.valid()) {
        throw std::invalid_argument("DFFR needs a reset input");
      }
      // Synchronous reset: d' = d & ~reset in front of the flop.
      const DiffNet gated = and2_stage(data[0], invert(ctrl));
      const DiffNet master = latch_stage(gated, invert(clk));
      ports.outputs = {latch_stage(master, clk)};
      break;
    }
    case CellKind::kEDff: {
      need(1);
      need_clk();
      if (!ctrl.valid()) {
        throw std::invalid_argument("EDFF needs an enable input");
      }
      // d' = en ? d : q (recirculating enable flop).
      DiffNet q = make_diff("edff_q");
      const DiffNet sel = mux2_stage(ctrl, q, data[0]);
      const DiffNet master = latch_stage(sel, invert(clk));
      const DiffNet slave = latch_stage(master, clk);
      // Tie the feedback: the mux's q input IS the slave output.  We created
      // placeholder nodes; alias by adding zero-ohm-ish resistors.
      ckt_.add_resistor(prefix_ + "edff_fb_p", q.p, slave.p, 1.0);
      ckt_.add_resistor(prefix_ + "edff_fb_n", q.n, slave.n, 1.0);
      ports.outputs = {slave};
      break;
    }
    case CellKind::kFullAdder: {
      need(3);  // {a, b, cin}
      const DiffNet p = xor2_stage(data[0], data[1]);
      const DiffNet sum = xor2_stage(p, data[2]);
      const DiffNet g = and2_stage(data[0], data[1]);
      // cout = p ? cin : g.
      const DiffNet cout = mux2_stage(p, g, data[2]);
      ports.outputs = {sum, cout};
      break;
    }
  }
  return ports;
}

int transistor_count(CellKind kind, bool power_gated) {
  spice::Circuit scratch;
  McmlDesign d;
  d.include_parasitics = false;
  d.gating = power_gated ? GatingTopology::kSeriesSleep : GatingTopology::kNone;
  McmlRails rails;
  rails.vdd = scratch.node("vdd");
  rails.vp = scratch.node("vp");
  rails.vn = scratch.node("vn");
  rails.sleep_on = scratch.node("slp");
  rails.sleep_off = scratch.node("slpb");
  McmlCellBuilder b(scratch, d, rails, "x.");
  const CellInfo& info = cell_info(kind);
  std::vector<DiffNet> data;
  for (int i = 0; i < info.num_inputs; ++i) {
    data.push_back(b.make_diff("in" + std::to_string(i)));
  }
  DiffNet clk;
  DiffNet ctrl;
  if (info.num_clocks > 0) clk = b.make_diff("clk");
  if (info.num_controls > 0) ctrl = b.make_diff("ctl");
  b.emit_cell(kind, data, clk, ctrl);
  return b.mosfets_emitted();
}

}  // namespace pgmcml::mcml
