#include "pgmcml/synth/sleep_tree.hpp"

#include <algorithm>
#include <cmath>

namespace pgmcml::synth {

SleepTreeResult insert_sleep_tree(const netlist::Design& design,
                                  const cells::CellLibrary& library,
                                  const SleepTreeOptions& options) {
  SleepTreeResult result;
  if (!library.power_gated()) return result;

  // Every instance of a power-gated library carries sleep pins -- one per
  // internal current-source stage; the buffer load limit is in *pins*.
  std::size_t pins = 0;
  for (const netlist::Instance& inst : design.instances()) {
    result.gated_cells += 1;
    pins += static_cast<std::size_t>(
        std::max(1, library.cell(inst.kind).stages));
  }
  if (result.gated_cells == 0) return result;

  // Balanced tree: leaves drive up to max_fanout pins; upper levels drive
  // up to max_fanout buffers each, until a single root buffer remains.
  std::size_t level_count =
      (pins + options.max_fanout - 1) / options.max_fanout;
  std::vector<std::size_t> levels;  // leaf level first
  levels.push_back(level_count);
  while (level_count > 1) {
    level_count = (level_count + options.max_fanout - 1) / options.max_fanout;
    levels.push_back(level_count);
  }
  std::reverse(levels.begin(), levels.end());  // root first

  result.level_sizes = levels;
  result.levels = levels.size();
  for (std::size_t n : levels) result.buffers += n;
  result.buffer_area =
      static_cast<double>(result.buffers) * options.buffer_area;

  // Delay: one buffer per level plus the leaf's pin load.  A balanced tree
  // equalizes the buffer path; the skew left over is the difference in leaf
  // loading (full vs partially filled last buffer).
  const std::size_t leaf_buffers = levels.back();
  const std::size_t full_load = options.max_fanout;
  const std::size_t last_load =
      pins - (leaf_buffers - 1) * options.max_fanout;
  const double path =
      static_cast<double>(result.levels) * options.buffer_delay;
  result.insertion_delay =
      path + static_cast<double>(full_load) * options.load_delay_per_pin;
  const double min_arrival =
      path + static_cast<double>(std::min(last_load, full_load)) *
                 options.load_delay_per_pin;
  result.skew = result.insertion_delay - min_arrival;
  return result;
}

double block_wakeup_time(const SleepTreeResult& tree, double cell_wake_time) {
  return tree.insertion_delay + tree.skew + cell_wake_time;
}

}  // namespace pgmcml::synth
