#include "pgmcml/synth/module.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

namespace pgmcml::synth {

Module::Module(std::string name) : name_(std::move(name)) {
  nodes_.push_back(Node{});  // node 0: constant false
}

Lit Module::input(const std::string& name) {
  Node n;
  n.op = NodeOp::kInput;
  n.name = name;
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(n);
  input_nodes_.push_back(id);
  return make_lit(id, false);
}

std::vector<Lit> Module::input_bus(const std::string& name, int width) {
  std::vector<Lit> bits;
  bits.reserve(width);
  for (int i = 0; i < width; ++i) {
    bits.push_back(input(name + "[" + std::to_string(i) + "]"));
  }
  return bits;
}

Lit Module::add_node(NodeOp op, Lit a, Lit b, Lit c) {
  const auto key = std::make_tuple(op, a, b, c);
  auto it = hash_.find(key);
  if (it != hash_.end()) return make_lit(it->second, false);
  Node n;
  n.op = op;
  n.a = a;
  n.b = b;
  n.c = c;
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(n);
  hash_.emplace(key, id);
  return make_lit(id, false);
}

Lit Module::land(Lit a, Lit b) {
  if (a > b) std::swap(a, b);  // commutativity normalization
  if (a == kLitFalse) { ++folded_; return kLitFalse; }
  if (a == kLitTrue) { ++folded_; return b; }
  if (a == b) { ++folded_; return a; }
  if (a == lit_not(b)) { ++folded_; return kLitFalse; }
  return add_node(NodeOp::kAnd, a, b, kLitFalse);
}

Lit Module::lxor(Lit a, Lit b) {
  // Pull complements out: xor(~a, b) = ~xor(a, b).
  bool neg = false;
  if (lit_neg(a)) { a = lit_not(a); neg = !neg; }
  if (lit_neg(b)) { b = lit_not(b); neg = !neg; }
  if (a > b) std::swap(a, b);
  Lit out;
  if (a == kLitFalse) { ++folded_; out = b; }
  else if (a == b) { ++folded_; out = kLitFalse; }
  else out = add_node(NodeOp::kXor, a, b, kLitFalse);
  return neg ? lit_not(out) : out;
}

Lit Module::lmux(Lit sel, Lit when0, Lit when1) {
  if (sel == kLitFalse) { ++folded_; return when0; }
  if (sel == kLitTrue) { ++folded_; return when1; }
  if (lit_neg(sel)) return lmux(lit_not(sel), when1, when0);
  if (when0 == when1) { ++folded_; return when0; }
  if (when0 == kLitFalse && when1 == kLitTrue) { ++folded_; return sel; }
  if (when0 == kLitTrue && when1 == kLitFalse) { ++folded_; return lit_not(sel); }
  // Pull a common output complement out of the data legs so shared
  // complementary cofactors hash to one node.
  if (lit_neg(when0) && lit_neg(when1)) {
    return lit_not(lmux(sel, lit_not(when0), lit_not(when1)));
  }
  return add_node(NodeOp::kMux, sel, when0, when1);
}

Lit Module::lmaj(Lit a, Lit b, Lit c) {
  // Normalize operand order.
  Lit v[3] = {a, b, c};
  std::sort(v, v + 3);
  if (v[0] == v[1]) { ++folded_; return v[0]; }
  if (v[1] == v[2]) { ++folded_; return v[1]; }
  if (v[0] == lit_not(v[1])) { ++folded_; return v[2]; }
  if (v[1] == lit_not(v[2])) { ++folded_; return v[0]; }
  return add_node(NodeOp::kMaj, v[0], v[1], v[2]);
}

Lit Module::dff(Lit d) { return add_node(NodeOp::kDff, d, kLitFalse, kLitFalse); }

Lit Module::dff_reset(Lit d, Lit reset) {
  const Lit q = add_node(NodeOp::kDff, d, reset, kLitFalse);
  nodes_[lit_node(q)].has_reset = true;
  return q;
}

Lit Module::dff_enable(Lit d, Lit enable) {
  const Lit q = add_node(NodeOp::kDff, d, kLitFalse, enable);
  nodes_[lit_node(q)].has_enable = true;
  return q;
}

void Module::output(const std::string& name, Lit l) {
  outputs_.emplace_back(name, l);
}

void Module::output_bus(const std::string& name, const std::vector<Lit>& bits) {
  for (std::size_t i = 0; i < bits.size(); ++i) {
    output(name + "[" + std::to_string(i) + "]", bits[i]);
  }
}

std::vector<bool> Module::evaluate(const std::vector<bool>& input_values,
                                   bool tick_clock,
                                   std::vector<bool>* flop_state) const {
  if (input_values.size() != input_nodes_.size()) {
    throw std::invalid_argument("Module::evaluate: input count mismatch");
  }
  std::vector<bool> node_val(nodes_.size(), false);
  std::vector<bool> local_state;
  std::vector<bool>* state = flop_state;
  if (state == nullptr) {
    local_state.assign(nodes_.size(), false);
    state = &local_state;
  } else if (state->size() != nodes_.size()) {
    state->assign(nodes_.size(), false);
  }

  std::size_t in_idx = 0;
  auto lv = [&](Lit l) { return node_val[lit_node(l)] != lit_neg(l); };
  // Nodes are created in topological order (operands precede users), so a
  // single forward pass evaluates the whole DAG; flops read prior state.
  for (std::uint32_t id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    switch (n.op) {
      case NodeOp::kConst:
        node_val[id] = false;
        break;
      case NodeOp::kInput:
        node_val[id] = input_values[in_idx++];
        break;
      case NodeOp::kAnd:
        node_val[id] = lv(n.a) && lv(n.b);
        break;
      case NodeOp::kXor:
        node_val[id] = lv(n.a) != lv(n.b);
        break;
      case NodeOp::kMux:
        node_val[id] = lv(n.a) ? lv(n.c) : lv(n.b);
        break;
      case NodeOp::kMaj: {
        const int s = int(lv(n.a)) + int(lv(n.b)) + int(lv(n.c));
        node_val[id] = s >= 2;
        break;
      }
      case NodeOp::kDff:
        node_val[id] = (*state)[id];
        break;
    }
  }
  if (tick_clock) {
    for (std::uint32_t id = 0; id < nodes_.size(); ++id) {
      const Node& n = nodes_[id];
      if (n.op != NodeOp::kDff) continue;
      bool next = lv(n.a);
      if (n.has_reset && lv(n.b)) next = false;
      if (n.has_enable && !lv(n.c)) next = (*state)[id];
      (*state)[id] = next;
    }
  }

  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (const auto& [nm, l] : outputs_) {
    (void)nm;
    out.push_back(lv(l));
  }
  return out;
}

std::vector<Lit> bus_xor(Module& m, const std::vector<Lit>& a,
                         const std::vector<Lit>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("bus_xor: width mismatch");
  }
  std::vector<Lit> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = m.lxor(a[i], b[i]);
  return out;
}

std::vector<Lit> bus_const(Module& m, std::uint64_t value, int width) {
  (void)m;
  std::vector<Lit> out(width);
  for (int i = 0; i < width; ++i) {
    out[i] = (value >> i) & 1 ? kLitTrue : kLitFalse;
  }
  return out;
}

std::vector<Lit> bus_mux(Module& m, Lit sel, const std::vector<Lit>& when0,
                         const std::vector<Lit>& when1) {
  if (when0.size() != when1.size()) {
    throw std::invalid_argument("bus_mux: width mismatch");
  }
  std::vector<Lit> out(when0.size());
  for (std::size_t i = 0; i < when0.size(); ++i) {
    out[i] = m.lmux(sel, when0[i], when1[i]);
  }
  return out;
}

}  // namespace pgmcml::synth
