#include "pgmcml/synth/lut.hpp"

#include <map>
#include <stdexcept>

namespace pgmcml::synth {
namespace {

class LutSynthesizer {
 public:
  LutSynthesizer(Module& m, const std::vector<Lit>& inputs)
      : m_(m), inputs_(inputs) {}

  Lit build(const std::vector<bool>& table) {
    if (table.size() != (1u << inputs_.size())) {
      throw std::invalid_argument("LUT synthesis: table size mismatch");
    }
    return recurse(table, static_cast<int>(inputs_.size()));
  }

 private:
  /// `vars` = number of live inputs (inputs_[0..vars-1] index the table).
  Lit recurse(const std::vector<bool>& table, int vars) {
    // Constant and 1-variable bases.
    bool all0 = true;
    bool all1 = true;
    for (bool b : table) {
      all0 = all0 && !b;
      all1 = all1 && b;
    }
    if (all0) return kLitFalse;
    if (all1) return kLitTrue;

    auto memo = memo_.find(table);
    if (memo != memo_.end()) return memo->second;

    Lit out;
    if (vars == 1) {
      out = table[1] ? inputs_[0] : lit_not(inputs_[0]);
    } else if (vars == 2) {
      out = two_var(table);
    } else {
      // Shannon on the highest variable: f = mux(x, f0, f1).
      const std::size_t half = table.size() / 2;
      const std::vector<bool> lo(table.begin(), table.begin() + half);
      const std::vector<bool> hi(table.begin() + half, table.end());
      const Lit f0 = recurse(lo, vars - 1);
      const Lit f1 = recurse(hi, vars - 1);
      out = m_.lmux(inputs_[vars - 1], f0, f1);
    }
    memo_.emplace(table, out);
    return out;
  }

  /// All sixteen 2-variable functions as at most one gate.
  Lit two_var(const std::vector<bool>& t) {
    const Lit a = inputs_[0];
    const Lit b = inputs_[1];
    const unsigned code = (t[0] ? 1u : 0u) | (t[1] ? 2u : 0u) |
                          (t[2] ? 4u : 0u) | (t[3] ? 8u : 0u);
    switch (code) {
      case 0x0: return kLitFalse;
      case 0xF: return kLitTrue;
      case 0xA: return a;                       // f = a
      case 0x5: return lit_not(a);
      case 0xC: return b;                       // f = b
      case 0x3: return lit_not(b);
      case 0x8: return m_.land(a, b);           // AND
      case 0x7: return m_.lnand(a, b);
      case 0xE: return m_.lor(a, b);            // OR
      case 0x1: return m_.lnor(a, b);
      case 0x6: return m_.lxor(a, b);           // XOR
      case 0x9: return m_.lxnor(a, b);
      case 0x2: return m_.land(a, lit_not(b));  // a & ~b
      case 0x4: return m_.land(lit_not(a), b);
      case 0xB: return m_.lor(a, lit_not(b));   // false only at (0,1)
      case 0xD: return m_.lor(lit_not(a), b);   // false only at (1,0)
    }
    throw std::logic_error("unreachable two_var code");
  }

  Module& m_;
  const std::vector<Lit>& inputs_;
  std::map<std::vector<bool>, Lit> memo_;
};

}  // namespace

Lit synthesize_truth_table(Module& m, const std::vector<Lit>& inputs,
                           const std::vector<bool>& table) {
  LutSynthesizer s(m, inputs);
  return s.build(table);
}

std::vector<Lit> synthesize_lut8(Module& m, const std::vector<Lit>& inputs,
                                 const std::vector<std::uint8_t>& table) {
  if (table.size() != (1u << inputs.size())) {
    throw std::invalid_argument("synthesize_lut8: table size mismatch");
  }
  // One shared synthesizer would memoize across bits; truth tables of
  // different bits rarely coincide exactly, but their cofactors do, so share
  // the memo by synthesizing all bits through one instance.
  LutSynthesizer s(m, inputs);
  std::vector<Lit> out;
  out.reserve(8);
  for (int bit = 0; bit < 8; ++bit) {
    std::vector<bool> tt(table.size());
    for (std::size_t i = 0; i < table.size(); ++i) {
      tt[i] = (table[i] >> bit) & 1;
    }
    out.push_back(s.build(tt));
  }
  return out;
}

}  // namespace pgmcml::synth
