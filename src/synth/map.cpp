#include "pgmcml/synth/map.hpp"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace pgmcml::synth {

using mcml::CellKind;
using netlist::Design;
using netlist::Instance;
using netlist::kNoNet;
using netlist::NetId;

namespace {

class Mapper {
 public:
  Mapper(const Module& m, const cells::CellLibrary& lib,
         const MapOptions& options)
      : module_(m), lib_(lib), options_(options) {
    result_.design = Design(m.name());
    analyze_uses();
  }

  MapResult run() {
    Design& d = result_.design;
    for (std::uint32_t id : module_.inputs()) {
      const NetId net = d.add_net(module_.node(id).name);
      d.mark_input(net, module_.node(id).name);
      net_of_[id] = net;
    }
    for (std::uint32_t id = 1; id < module_.num_nodes(); ++id) {
      if (module_.node(id).op == NodeOp::kDff) {
        clock_net_ = d.add_net("clk");
        d.mark_input(clock_net_, "clk");
        break;
      }
    }
    // Map roots first; absorbable single-fanout nodes are consumed by their
    // user via collect_leaves / mux fusion, everything else is mapped on
    // demand through resolve().
    for (std::uint32_t id = 1; id < module_.num_nodes(); ++id) {
      const Node& n = module_.node(id);
      if (n.op == NodeOp::kInput || n.op == NodeOp::kConst) continue;
      if (absorbable(id)) continue;
      map_node(id);
    }
    // Anything deferred but never consumed (e.g. budget overflow).
    for (std::uint32_t id = 1; id < module_.num_nodes(); ++id) {
      const Node& n = module_.node(id);
      if (n.op == NodeOp::kInput || n.op == NodeOp::kConst) continue;
      map_node(id);
    }
    for (const auto& [name, lit] : module_.outputs()) {
      NetId net = net_for(lit_node(lit));
      bool inv = lit_neg(lit);
      if (inv && !lib_.free_inversion()) {
        net = inverter(net);
        inv = false;
      }
      d.mark_output(net, name, inv);
    }
    result_.cells = d.num_instances();
    return std::move(result_);
  }

 private:
  struct Use {
    std::uint32_t user = 0;
    Lit as = kLitFalse;
    int slot = 0;  ///< operand position in the user (0=a, 1=b, 2=c)
  };

  void analyze_uses() {
    fanout_.assign(module_.num_nodes(), 0);
    last_use_.assign(module_.num_nodes(), Use{});
    auto use = [&](Lit l, std::uint32_t user, int slot) {
      ++fanout_[lit_node(l)];
      last_use_[lit_node(l)] = Use{user, l, slot};
    };
    for (std::uint32_t id = 1; id < module_.num_nodes(); ++id) {
      const Node& n = module_.node(id);
      switch (n.op) {
        case NodeOp::kAnd:
        case NodeOp::kXor:
          use(n.a, id, 0);
          use(n.b, id, 1);
          break;
        case NodeOp::kMux:
        case NodeOp::kMaj:
          use(n.a, id, 0);
          use(n.b, id, 1);
          use(n.c, id, 2);
          break;
        case NodeOp::kDff:
          use(n.a, id, 0);
          if (n.has_reset) use(n.b, id, 1);
          if (n.has_enable) use(n.c, id, 2);
          break;
        default:
          break;
      }
    }
    for (const auto& [name, lit] : module_.outputs()) {
      (void)name;
      ++fanout_[lit_node(lit)];
      last_use_[lit_node(lit)] = Use{0, lit, -1};  // output use blocks absorb
    }
  }

  /// True when this node should be left for its unique user to swallow.
  bool absorbable(std::uint32_t id) const {
    if (!options_.collapse || fanout_[id] != 1) return false;
    const Node& n = module_.node(id);
    const Use& u = last_use_[id];
    if (u.slot < 0 || u.user == 0) return false;
    const Node& parent = module_.node(u.user);
    if (n.op == NodeOp::kAnd) {
      return parent.op == NodeOp::kAnd && !lit_neg(u.as);
    }
    if (n.op == NodeOp::kXor) {
      return parent.op == NodeOp::kXor;
    }
    if (n.op == NodeOp::kMux) {
      // Data legs of a parent mux on a matching inner select may fuse.
      return parent.op == NodeOp::kMux && u.slot >= 1 && !lit_neg(u.as);
    }
    return false;
  }

  NetId net_for(std::uint32_t node) {
    map_node(node);
    auto it = net_of_.find(node);
    if (it != net_of_.end()) return it->second;
    if (module_.node(node).op == NodeOp::kConst) {
      if (const_net_ == kNoNet) {
        const_net_ = result_.design.add_net("const0");
        result_.design.mark_input(const_net_, "const0");
      }
      return const_net_;
    }
    throw std::logic_error("mapper: unresolvable node");
  }

  std::pair<NetId, bool> resolve(Lit l) {
    NetId net = net_for(lit_node(l));
    bool inv = lit_neg(l);
    if (inv && !lib_.free_inversion()) {
      net = inverter(net);
      inv = false;
    }
    return {net, inv};
  }

  /// Materialized NOT of a net (cached; used by CMOS data paths and by
  /// control pins in every style, since control inputs carry no phase flag).
  NetId inverter(NetId net) {
    auto it = inverted_net_.find(net);
    if (it != inverted_net_.end()) return it->second;
    Design& d = result_.design;
    const NetId out = d.add_net("inv");
    Instance inst;
    inst.name = "U_inv" + std::to_string(result_.inverters);
    inst.kind = CellKind::kBuf;
    inst.inputs = {net};
    inst.outputs = {out};
    inst.inverted_output = true;
    d.add_instance(std::move(inst));
    ++result_.inverters;
    inverted_net_.emplace(net, out);
    return out;
  }

  void emit(std::uint32_t id, CellKind kind, const std::vector<Lit>& ins,
            bool out_inverted = false, Lit ctrl = kLitFalse,
            bool has_ctrl = false) {
    Design& d = result_.design;
    Instance inst;
    inst.name = "U" + std::to_string(id);
    inst.kind = kind;
    inst.input_inverted.assign(ins.size(), false);
    for (std::size_t k = 0; k < ins.size(); ++k) {
      const auto [net, inv] = resolve(ins[k]);
      inst.inputs.push_back(net);
      inst.input_inverted[k] = inv;
    }
    if (mcml::cell_info(kind).sequential) inst.clk = clock_net_;
    if (has_ctrl) {
      auto [net, inv] = resolve(ctrl);
      if (inv) net = inverter(net);
      inst.ctrl = net;
    }
    const NetId out = d.add_net("w");
    inst.outputs = {out};
    inst.inverted_output = out_inverted;
    d.add_instance(std::move(inst));
    net_of_[id] = out;
  }

  void collect_leaves(Lit l, NodeOp op, int limit, std::vector<Lit>& leaves,
                      bool& parity) {
    const std::uint32_t id = lit_node(l);
    const Node& n = module_.node(id);
    const bool expandable =
        options_.collapse && n.op == op && fanout_[id] == 1 &&
        !net_of_.count(id) &&
        static_cast<int>(leaves.size()) + 2 <= limit &&
        (op == NodeOp::kXor || !lit_neg(l));
    if (expandable) {
      if (op == NodeOp::kXor && lit_neg(l)) parity = !parity;
      consumed_.insert(id);
      collect_leaves(n.a, op, limit, leaves, parity);
      collect_leaves(n.b, op, limit, leaves, parity);
    } else {
      leaves.push_back(l);
    }
  }

  void map_node(std::uint32_t id) {
    if (net_of_.count(id) || consumed_.count(id)) return;
    const Node& n = module_.node(id);
    switch (n.op) {
      case NodeOp::kAnd: {
        std::vector<Lit> leaves;
        bool parity = false;
        // Temporarily reserve this id so recursion cannot revisit it.
        consumed_.insert(id);
        collect_leaves(n.a, NodeOp::kAnd, 4, leaves, parity);
        collect_leaves(n.b, NodeOp::kAnd, 4, leaves, parity);
        consumed_.erase(id);
        if (leaves.size() == 4) {
          emit(id, CellKind::kAnd4, leaves);
        } else if (leaves.size() == 3) {
          emit(id, CellKind::kAnd3, leaves);
        } else {
          emit(id, CellKind::kAnd2, {leaves[0], leaves[1]});
        }
        break;
      }
      case NodeOp::kXor: {
        std::vector<Lit> leaves;
        bool parity = false;
        consumed_.insert(id);
        collect_leaves(n.a, NodeOp::kXor, 4, leaves, parity);
        collect_leaves(n.b, NodeOp::kXor, 4, leaves, parity);
        consumed_.erase(id);
        if (leaves.size() == 4) {
          emit(id, CellKind::kXor4, leaves, parity);
        } else if (leaves.size() == 3) {
          emit(id, CellKind::kXor3, leaves, parity);
        } else {
          emit(id, CellKind::kXor2, {leaves[0], leaves[1]}, parity);
        }
        break;
      }
      case NodeOp::kMux: {
        const std::uint32_t bn = lit_node(n.b);
        const std::uint32_t cn = lit_node(n.c);
        const Node& b = module_.node(bn);
        const Node& c = module_.node(cn);
        const bool fuse =
            options_.collapse && b.op == NodeOp::kMux && c.op == NodeOp::kMux &&
            !lit_neg(n.b) && !lit_neg(n.c) && b.a == c.a && bn != cn &&
            fanout_[bn] == 1 && fanout_[cn] == 1 && !net_of_.count(bn) &&
            !net_of_.count(cn);
        if (fuse) {
          consumed_.insert(bn);
          consumed_.insert(cn);
          // {sel0, sel1, in0..in3}: inner select first, this select second.
          emit(id, CellKind::kMux4, {b.a, n.a, b.b, b.c, c.b, c.c});
        } else {
          emit(id, CellKind::kMux2, {n.a, n.b, n.c});
        }
        break;
      }
      case NodeOp::kMaj:
        emit(id, CellKind::kMaj3, {n.a, n.b, n.c});
        break;
      case NodeOp::kDff:
        if (n.has_reset) {
          emit(id, CellKind::kDffR, {n.a}, false, n.b, true);
        } else if (n.has_enable) {
          emit(id, CellKind::kEDff, {n.a}, false, n.c, true);
        } else {
          emit(id, CellKind::kDff, {n.a});
        }
        break;
      case NodeOp::kConst:
      case NodeOp::kInput:
        break;
    }
  }

  const Module& module_;
  const cells::CellLibrary& lib_;
  MapOptions options_;
  MapResult result_;
  std::unordered_map<std::uint32_t, NetId> net_of_;
  std::unordered_map<NetId, NetId> inverted_net_;
  std::unordered_set<std::uint32_t> consumed_;
  std::vector<std::size_t> fanout_;
  std::vector<Use> last_use_;
  NetId clock_net_ = kNoNet;
  NetId const_net_ = kNoNet;
};

}  // namespace

MapResult map_module(const Module& module, const cells::CellLibrary& library,
                     const MapOptions& options) {
  Mapper mapper(module, library, options);
  return mapper.run();
}

}  // namespace pgmcml::synth
