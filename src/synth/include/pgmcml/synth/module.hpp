// RTL-level intermediate representation: a structurally-hashed DAG of
// AND / XOR / MUX / MAJ / DFF nodes over complemented literals (AIG-style:
// literal = node << 1 | negated).  This is what "RTL code" means in this
// reproduction; the technology mapper lowers it onto the 16-cell library.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pgmcml::synth {

using Lit = std::uint32_t;

inline constexpr Lit kLitFalse = 0;  ///< constant-0 literal (node 0)
inline constexpr Lit kLitTrue = 1;

inline Lit lit_not(Lit l) { return l ^ 1u; }
inline std::uint32_t lit_node(Lit l) { return l >> 1; }
inline bool lit_neg(Lit l) { return (l & 1u) != 0; }
inline Lit make_lit(std::uint32_t node, bool neg) {
  return (node << 1) | (neg ? 1u : 0u);
}

enum class NodeOp : std::uint8_t {
  kConst,  ///< node 0: constant false
  kInput,
  kAnd,   ///< a & b
  kXor,   ///< a ^ b (operand literals stored uncomplemented)
  kMux,   ///< a ? c : b   (a = select, b = when-0, c = when-1)
  kMaj,   ///< majority(a, b, c)
  kDff,   ///< q: a = d, clk implicit (single global clock domain),
          ///< b = optional reset literal, c = optional enable literal
};

struct Node {
  NodeOp op = NodeOp::kConst;
  Lit a = kLitFalse;
  Lit b = kLitFalse;
  Lit c = kLitFalse;
  bool has_reset = false;
  bool has_enable = false;
  std::string name;  ///< inputs only
};

class Module {
 public:
  explicit Module(std::string name = "top");

  const std::string& name() const { return name_; }

  Lit input(const std::string& name);
  /// Bus convenience: `width` inputs named name[0..width-1], LSB first.
  std::vector<Lit> input_bus(const std::string& name, int width);

  Lit land(Lit a, Lit b);
  Lit lor(Lit a, Lit b) { return lit_not(land(lit_not(a), lit_not(b))); }
  Lit lxor(Lit a, Lit b);
  Lit lxnor(Lit a, Lit b) { return lit_not(lxor(a, b)); }
  Lit lnand(Lit a, Lit b) { return lit_not(land(a, b)); }
  Lit lnor(Lit a, Lit b) { return lit_not(lor(a, b)); }
  /// sel ? when1 : when0.
  Lit lmux(Lit sel, Lit when0, Lit when1);
  Lit lmaj(Lit a, Lit b, Lit c);

  /// Rising-edge flop in the single global clock domain; optional
  /// synchronous reset and enable.
  Lit dff(Lit d);
  Lit dff_reset(Lit d, Lit reset);
  Lit dff_enable(Lit d, Lit enable);

  void output(const std::string& name, Lit l);
  /// Bus convenience, LSB first.
  void output_bus(const std::string& name, const std::vector<Lit>& bits);

  std::size_t num_nodes() const { return nodes_.size(); }
  const Node& node(std::uint32_t id) const { return nodes_.at(id); }
  const std::vector<std::pair<std::string, Lit>>& outputs() const {
    return outputs_;
  }
  const std::vector<std::uint32_t>& inputs() const { return input_nodes_; }

  /// Literal-level constant/identity simplification statistics.
  std::size_t folded() const { return folded_; }

  /// Evaluates the module combinationally for given input values (flops read
  /// their current state, which this call also advances on request).
  std::vector<bool> evaluate(const std::vector<bool>& input_values,
                             bool tick_clock = false,
                             std::vector<bool>* flop_state = nullptr) const;

 private:
  Lit add_node(NodeOp op, Lit a, Lit b, Lit c);

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> input_nodes_;
  std::vector<std::pair<std::string, Lit>> outputs_;
  std::map<std::tuple<NodeOp, Lit, Lit, Lit>, std::uint32_t> hash_;
  std::size_t folded_ = 0;
};

// --- bit-vector helpers (LSB-first buses) ----------------------------------
std::vector<Lit> bus_xor(Module& m, const std::vector<Lit>& a,
                         const std::vector<Lit>& b);
std::vector<Lit> bus_const(Module& m, std::uint64_t value, int width);
std::vector<Lit> bus_mux(Module& m, Lit sel, const std::vector<Lit>& when0,
                         const std::vector<Lit>& when1);

}  // namespace pgmcml::synth
