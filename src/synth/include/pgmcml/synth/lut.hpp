// Combinational synthesis of lookup tables (the AES S-box is an 8x8 LUT in
// the paper's custom functional unit).  Uses recursive Shannon decomposition
// into mux trees with memoization on cofactor truth tables, so identical
// subfunctions -- within one output bit and across output bits -- are shared.
// The resulting mux pairs fuse into MUX4 cells during technology mapping.
#pragma once

#include <cstdint>
#include <vector>

#include "pgmcml/synth/module.hpp"

namespace pgmcml::synth {

/// Synthesizes a single-output boolean function given as a truth table over
/// `inputs` (table.size() == 1 << inputs.size(), index bit i = inputs[i]).
Lit synthesize_truth_table(Module& m, const std::vector<Lit>& inputs,
                           const std::vector<bool>& table);

/// Synthesizes an n-input, 8-bit-output lookup table (LSB-first outputs).
/// `table.size()` must be 1 << inputs.size().
std::vector<Lit> synthesize_lut8(Module& m, const std::vector<Lit>& inputs,
                                 const std::vector<std::uint8_t>& table);

}  // namespace pgmcml::synth
