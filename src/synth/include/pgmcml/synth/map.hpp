// Technology mapping: lowers a Module DAG onto the 16-cell library.
//
// The mapper does what Design Compiler did in the paper's flow, scaled to
// this cell set:
//   * collapses single-fanout AND/XOR trees into AND3/AND4/XOR3/XOR4,
//   * fuses mux trees into MUX4, recognizes MAJ -> MAJ32, XOR+MAJ -> FA,
//   * maps flops (plain/reset/enable) onto DFF/DFFR/EDFF,
//   * handles complemented literals per logic style: differential MCML
//     reads either phase for free (recorded as input_inverted flags, i.e.
//     the fat-wire pair is simply swapped); static CMOS pays real inverter
//     cells, which is why the CMOS netlist of Table 3 has more cells than
//     the MCML one.
#pragma once

#include "pgmcml/cells/library.hpp"
#include "pgmcml/netlist/design.hpp"
#include "pgmcml/synth/module.hpp"

namespace pgmcml::synth {

struct MapOptions {
  /// Collapse multi-input AND/XOR/MUX patterns (off = 2-input cells only,
  /// for the mapping ablation).
  bool collapse = true;
};

struct MapResult {
  netlist::Design design;
  std::size_t inverters = 0;  ///< inverter cells inserted (CMOS only)
  std::size_t cells = 0;      ///< total instances including inverters
};

/// Maps `module` for the given library's logic style.
MapResult map_module(const Module& module, const cells::CellLibrary& library,
                     const MapOptions& options = {});

}  // namespace pgmcml::synth
