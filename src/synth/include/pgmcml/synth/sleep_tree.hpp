// Automatic sleep-signal insertion -- the paper's stated future work
// ("Automatic insertion of sleep signal during synthesis will be
// investigated in future work", Section 7), implemented here.
//
// Section 5/6 describe the manual flow this pass automates: every PG-MCML
// cell has a sleep input; all cells in a cluster share one sleep net, which
// must be buffered "as a balanced tree" of single-ended CMOS clock buffers
// (same row height as the PG-MCML cells) so the block switches on within a
// fraction of the clock period (~1 ns insertion delay in the paper).
//
// The pass:
//   * partitions the netlist's PG cells into clusters of bounded sleep
//     fan-out (a buffer can drive only so many sleep pins),
//   * synthesizes a balanced buffer tree from the sleep root to the
//     clusters (the CTS-like step the paper runs in the P&R tool),
//   * reports buffer count, buffer area, insertion delay and skew.
//
// The inserted buffers are what make the paper's PG-MCML netlist larger in
// cell count than the conventional MCML one (3076 vs 2911 in Table 3).
#pragma once

#include <cstddef>
#include <vector>

#include "pgmcml/cells/library.hpp"
#include "pgmcml/netlist/design.hpp"

namespace pgmcml::synth {

struct SleepTreeOptions {
  /// Maximum sleep pins one buffer may drive (load limit).
  std::size_t max_fanout = 24;
  /// Delay of one sleep buffer [s] (single-ended CMOS clock buffer).
  double buffer_delay = 65e-12;
  /// Extra RC delay per driven sleep pin [s] (wire + pin load).
  double load_delay_per_pin = 1.5e-12;
  /// Area of one sleep buffer [m^2] (CMOS buffer at PG-MCML row height).
  double buffer_area = 2.6e-12;
};

struct SleepTreeResult {
  std::size_t gated_cells = 0;    ///< PG cells receiving the sleep signal
  std::size_t buffers = 0;        ///< inserted sleep buffers
  std::size_t levels = 0;         ///< tree depth
  double buffer_area = 0.0;       ///< total added area [m^2]
  double insertion_delay = 0.0;   ///< root-to-farthest-pin delay [s]
  double skew = 0.0;              ///< max minus min pin arrival [s]
  /// Per-level buffer counts, root first.
  std::vector<std::size_t> level_sizes;

  /// Cells of the block including the sleep buffers (the Table 3 number).
  std::size_t total_cells(std::size_t logic_cells) const {
    return logic_cells + buffers;
  }
};

/// Plans the sleep-distribution tree for a mapped design in the given
/// library.  For non-power-gated libraries the result is empty (no pass
/// needed).  The tree is balanced, so the skew is bounded by the per-pin
/// load spread within the leaf level.
SleepTreeResult insert_sleep_tree(const netlist::Design& design,
                                  const cells::CellLibrary& library,
                                  const SleepTreeOptions& options = {});

/// Wake-up latency of the gated block: insertion delay of the tree plus the
/// cell-level wake time (sleep transistor turning the tail back on).
double block_wakeup_time(const SleepTreeResult& tree, double cell_wake_time);

}  // namespace pgmcml::synth
