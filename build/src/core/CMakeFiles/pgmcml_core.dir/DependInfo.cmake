
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aes_core.cpp" "src/core/CMakeFiles/pgmcml_core.dir/aes_core.cpp.o" "gcc" "src/core/CMakeFiles/pgmcml_core.dir/aes_core.cpp.o.d"
  "/root/repo/src/core/dpa_flow.cpp" "src/core/CMakeFiles/pgmcml_core.dir/dpa_flow.cpp.o" "gcc" "src/core/CMakeFiles/pgmcml_core.dir/dpa_flow.cpp.o.d"
  "/root/repo/src/core/ise_experiment.cpp" "src/core/CMakeFiles/pgmcml_core.dir/ise_experiment.cpp.o" "gcc" "src/core/CMakeFiles/pgmcml_core.dir/ise_experiment.cpp.o.d"
  "/root/repo/src/core/sbox_unit.cpp" "src/core/CMakeFiles/pgmcml_core.dir/sbox_unit.cpp.o" "gcc" "src/core/CMakeFiles/pgmcml_core.dir/sbox_unit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aes/CMakeFiles/pgmcml_aes.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/pgmcml_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/pgmcml_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/or1k/CMakeFiles/pgmcml_or1k.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pgmcml_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sca/CMakeFiles/pgmcml_sca.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/pgmcml_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/mcml/CMakeFiles/pgmcml_mcml.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/pgmcml_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgmcml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
