file(REMOVE_RECURSE
  "libpgmcml_core.a"
)
