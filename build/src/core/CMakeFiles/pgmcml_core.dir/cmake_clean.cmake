file(REMOVE_RECURSE
  "CMakeFiles/pgmcml_core.dir/aes_core.cpp.o"
  "CMakeFiles/pgmcml_core.dir/aes_core.cpp.o.d"
  "CMakeFiles/pgmcml_core.dir/dpa_flow.cpp.o"
  "CMakeFiles/pgmcml_core.dir/dpa_flow.cpp.o.d"
  "CMakeFiles/pgmcml_core.dir/ise_experiment.cpp.o"
  "CMakeFiles/pgmcml_core.dir/ise_experiment.cpp.o.d"
  "CMakeFiles/pgmcml_core.dir/sbox_unit.cpp.o"
  "CMakeFiles/pgmcml_core.dir/sbox_unit.cpp.o.d"
  "libpgmcml_core.a"
  "libpgmcml_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmcml_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
