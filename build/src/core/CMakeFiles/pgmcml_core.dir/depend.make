# Empty dependencies file for pgmcml_core.
# This may be replaced when dependencies are built.
