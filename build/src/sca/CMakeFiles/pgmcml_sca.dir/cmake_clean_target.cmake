file(REMOVE_RECURSE
  "libpgmcml_sca.a"
)
