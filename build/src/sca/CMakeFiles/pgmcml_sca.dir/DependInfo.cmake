
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sca/attack.cpp" "src/sca/CMakeFiles/pgmcml_sca.dir/attack.cpp.o" "gcc" "src/sca/CMakeFiles/pgmcml_sca.dir/attack.cpp.o.d"
  "/root/repo/src/sca/traces.cpp" "src/sca/CMakeFiles/pgmcml_sca.dir/traces.cpp.o" "gcc" "src/sca/CMakeFiles/pgmcml_sca.dir/traces.cpp.o.d"
  "/root/repo/src/sca/tvla.cpp" "src/sca/CMakeFiles/pgmcml_sca.dir/tvla.cpp.o" "gcc" "src/sca/CMakeFiles/pgmcml_sca.dir/tvla.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aes/CMakeFiles/pgmcml_aes.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgmcml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
