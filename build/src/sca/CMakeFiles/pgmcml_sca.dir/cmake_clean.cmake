file(REMOVE_RECURSE
  "CMakeFiles/pgmcml_sca.dir/attack.cpp.o"
  "CMakeFiles/pgmcml_sca.dir/attack.cpp.o.d"
  "CMakeFiles/pgmcml_sca.dir/traces.cpp.o"
  "CMakeFiles/pgmcml_sca.dir/traces.cpp.o.d"
  "CMakeFiles/pgmcml_sca.dir/tvla.cpp.o"
  "CMakeFiles/pgmcml_sca.dir/tvla.cpp.o.d"
  "libpgmcml_sca.a"
  "libpgmcml_sca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmcml_sca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
