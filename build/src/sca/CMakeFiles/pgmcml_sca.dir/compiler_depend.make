# Empty compiler generated dependencies file for pgmcml_sca.
# This may be replaced when dependencies are built.
