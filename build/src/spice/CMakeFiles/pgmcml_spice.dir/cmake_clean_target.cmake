file(REMOVE_RECURSE
  "libpgmcml_spice.a"
)
