file(REMOVE_RECURSE
  "CMakeFiles/pgmcml_spice.dir/circuit.cpp.o"
  "CMakeFiles/pgmcml_spice.dir/circuit.cpp.o.d"
  "CMakeFiles/pgmcml_spice.dir/deck.cpp.o"
  "CMakeFiles/pgmcml_spice.dir/deck.cpp.o.d"
  "CMakeFiles/pgmcml_spice.dir/engine.cpp.o"
  "CMakeFiles/pgmcml_spice.dir/engine.cpp.o.d"
  "CMakeFiles/pgmcml_spice.dir/mosfet.cpp.o"
  "CMakeFiles/pgmcml_spice.dir/mosfet.cpp.o.d"
  "CMakeFiles/pgmcml_spice.dir/source.cpp.o"
  "CMakeFiles/pgmcml_spice.dir/source.cpp.o.d"
  "CMakeFiles/pgmcml_spice.dir/technology.cpp.o"
  "CMakeFiles/pgmcml_spice.dir/technology.cpp.o.d"
  "libpgmcml_spice.a"
  "libpgmcml_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmcml_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
