
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/circuit.cpp" "src/spice/CMakeFiles/pgmcml_spice.dir/circuit.cpp.o" "gcc" "src/spice/CMakeFiles/pgmcml_spice.dir/circuit.cpp.o.d"
  "/root/repo/src/spice/deck.cpp" "src/spice/CMakeFiles/pgmcml_spice.dir/deck.cpp.o" "gcc" "src/spice/CMakeFiles/pgmcml_spice.dir/deck.cpp.o.d"
  "/root/repo/src/spice/engine.cpp" "src/spice/CMakeFiles/pgmcml_spice.dir/engine.cpp.o" "gcc" "src/spice/CMakeFiles/pgmcml_spice.dir/engine.cpp.o.d"
  "/root/repo/src/spice/mosfet.cpp" "src/spice/CMakeFiles/pgmcml_spice.dir/mosfet.cpp.o" "gcc" "src/spice/CMakeFiles/pgmcml_spice.dir/mosfet.cpp.o.d"
  "/root/repo/src/spice/source.cpp" "src/spice/CMakeFiles/pgmcml_spice.dir/source.cpp.o" "gcc" "src/spice/CMakeFiles/pgmcml_spice.dir/source.cpp.o.d"
  "/root/repo/src/spice/technology.cpp" "src/spice/CMakeFiles/pgmcml_spice.dir/technology.cpp.o" "gcc" "src/spice/CMakeFiles/pgmcml_spice.dir/technology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pgmcml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
