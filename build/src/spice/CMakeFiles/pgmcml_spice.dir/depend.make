# Empty dependencies file for pgmcml_spice.
# This may be replaced when dependencies are built.
