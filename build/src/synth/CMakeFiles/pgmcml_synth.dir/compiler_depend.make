# Empty compiler generated dependencies file for pgmcml_synth.
# This may be replaced when dependencies are built.
