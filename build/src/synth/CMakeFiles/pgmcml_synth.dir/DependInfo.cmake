
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/lut.cpp" "src/synth/CMakeFiles/pgmcml_synth.dir/lut.cpp.o" "gcc" "src/synth/CMakeFiles/pgmcml_synth.dir/lut.cpp.o.d"
  "/root/repo/src/synth/map.cpp" "src/synth/CMakeFiles/pgmcml_synth.dir/map.cpp.o" "gcc" "src/synth/CMakeFiles/pgmcml_synth.dir/map.cpp.o.d"
  "/root/repo/src/synth/module.cpp" "src/synth/CMakeFiles/pgmcml_synth.dir/module.cpp.o" "gcc" "src/synth/CMakeFiles/pgmcml_synth.dir/module.cpp.o.d"
  "/root/repo/src/synth/sleep_tree.cpp" "src/synth/CMakeFiles/pgmcml_synth.dir/sleep_tree.cpp.o" "gcc" "src/synth/CMakeFiles/pgmcml_synth.dir/sleep_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/pgmcml_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/pgmcml_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/mcml/CMakeFiles/pgmcml_mcml.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/pgmcml_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgmcml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
