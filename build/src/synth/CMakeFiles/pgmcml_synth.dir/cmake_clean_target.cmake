file(REMOVE_RECURSE
  "libpgmcml_synth.a"
)
