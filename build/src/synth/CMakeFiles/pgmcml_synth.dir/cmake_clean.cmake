file(REMOVE_RECURSE
  "CMakeFiles/pgmcml_synth.dir/lut.cpp.o"
  "CMakeFiles/pgmcml_synth.dir/lut.cpp.o.d"
  "CMakeFiles/pgmcml_synth.dir/map.cpp.o"
  "CMakeFiles/pgmcml_synth.dir/map.cpp.o.d"
  "CMakeFiles/pgmcml_synth.dir/module.cpp.o"
  "CMakeFiles/pgmcml_synth.dir/module.cpp.o.d"
  "CMakeFiles/pgmcml_synth.dir/sleep_tree.cpp.o"
  "CMakeFiles/pgmcml_synth.dir/sleep_tree.cpp.o.d"
  "libpgmcml_synth.a"
  "libpgmcml_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmcml_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
