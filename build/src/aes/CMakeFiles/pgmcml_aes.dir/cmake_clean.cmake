file(REMOVE_RECURSE
  "CMakeFiles/pgmcml_aes.dir/aes.cpp.o"
  "CMakeFiles/pgmcml_aes.dir/aes.cpp.o.d"
  "libpgmcml_aes.a"
  "libpgmcml_aes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmcml_aes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
