file(REMOVE_RECURSE
  "libpgmcml_aes.a"
)
