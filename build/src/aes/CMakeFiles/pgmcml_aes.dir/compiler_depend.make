# Empty compiler generated dependencies file for pgmcml_aes.
# This may be replaced when dependencies are built.
