file(REMOVE_RECURSE
  "CMakeFiles/pgmcml_cells.dir/liberty.cpp.o"
  "CMakeFiles/pgmcml_cells.dir/liberty.cpp.o.d"
  "CMakeFiles/pgmcml_cells.dir/library.cpp.o"
  "CMakeFiles/pgmcml_cells.dir/library.cpp.o.d"
  "libpgmcml_cells.a"
  "libpgmcml_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmcml_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
