# Empty compiler generated dependencies file for pgmcml_cells.
# This may be replaced when dependencies are built.
