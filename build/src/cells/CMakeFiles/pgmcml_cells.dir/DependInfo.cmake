
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cells/liberty.cpp" "src/cells/CMakeFiles/pgmcml_cells.dir/liberty.cpp.o" "gcc" "src/cells/CMakeFiles/pgmcml_cells.dir/liberty.cpp.o.d"
  "/root/repo/src/cells/library.cpp" "src/cells/CMakeFiles/pgmcml_cells.dir/library.cpp.o" "gcc" "src/cells/CMakeFiles/pgmcml_cells.dir/library.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mcml/CMakeFiles/pgmcml_mcml.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/pgmcml_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgmcml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
