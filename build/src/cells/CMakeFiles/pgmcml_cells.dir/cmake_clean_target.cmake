file(REMOVE_RECURSE
  "libpgmcml_cells.a"
)
