file(REMOVE_RECURSE
  "CMakeFiles/pgmcml_power.dir/integrity.cpp.o"
  "CMakeFiles/pgmcml_power.dir/integrity.cpp.o.d"
  "CMakeFiles/pgmcml_power.dir/kernels.cpp.o"
  "CMakeFiles/pgmcml_power.dir/kernels.cpp.o.d"
  "CMakeFiles/pgmcml_power.dir/tracer.cpp.o"
  "CMakeFiles/pgmcml_power.dir/tracer.cpp.o.d"
  "libpgmcml_power.a"
  "libpgmcml_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmcml_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
