# Empty compiler generated dependencies file for pgmcml_power.
# This may be replaced when dependencies are built.
