file(REMOVE_RECURSE
  "libpgmcml_power.a"
)
