
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/integrity.cpp" "src/power/CMakeFiles/pgmcml_power.dir/integrity.cpp.o" "gcc" "src/power/CMakeFiles/pgmcml_power.dir/integrity.cpp.o.d"
  "/root/repo/src/power/kernels.cpp" "src/power/CMakeFiles/pgmcml_power.dir/kernels.cpp.o" "gcc" "src/power/CMakeFiles/pgmcml_power.dir/kernels.cpp.o.d"
  "/root/repo/src/power/tracer.cpp" "src/power/CMakeFiles/pgmcml_power.dir/tracer.cpp.o" "gcc" "src/power/CMakeFiles/pgmcml_power.dir/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/pgmcml_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/pgmcml_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/mcml/CMakeFiles/pgmcml_mcml.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/pgmcml_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgmcml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
