# CMake generated Testfile for 
# Source directory: /root/repo/src/or1k
# Build directory: /root/repo/build/src/or1k
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
