# Empty dependencies file for pgmcml_or1k.
# This may be replaced when dependencies are built.
