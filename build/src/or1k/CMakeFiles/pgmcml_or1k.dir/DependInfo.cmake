
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/or1k/aes_program.cpp" "src/or1k/CMakeFiles/pgmcml_or1k.dir/aes_program.cpp.o" "gcc" "src/or1k/CMakeFiles/pgmcml_or1k.dir/aes_program.cpp.o.d"
  "/root/repo/src/or1k/cpu.cpp" "src/or1k/CMakeFiles/pgmcml_or1k.dir/cpu.cpp.o" "gcc" "src/or1k/CMakeFiles/pgmcml_or1k.dir/cpu.cpp.o.d"
  "/root/repo/src/or1k/isa.cpp" "src/or1k/CMakeFiles/pgmcml_or1k.dir/isa.cpp.o" "gcc" "src/or1k/CMakeFiles/pgmcml_or1k.dir/isa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aes/CMakeFiles/pgmcml_aes.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
