file(REMOVE_RECURSE
  "CMakeFiles/pgmcml_or1k.dir/aes_program.cpp.o"
  "CMakeFiles/pgmcml_or1k.dir/aes_program.cpp.o.d"
  "CMakeFiles/pgmcml_or1k.dir/cpu.cpp.o"
  "CMakeFiles/pgmcml_or1k.dir/cpu.cpp.o.d"
  "CMakeFiles/pgmcml_or1k.dir/isa.cpp.o"
  "CMakeFiles/pgmcml_or1k.dir/isa.cpp.o.d"
  "libpgmcml_or1k.a"
  "libpgmcml_or1k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmcml_or1k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
