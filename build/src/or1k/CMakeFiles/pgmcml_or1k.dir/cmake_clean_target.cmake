file(REMOVE_RECURSE
  "libpgmcml_or1k.a"
)
