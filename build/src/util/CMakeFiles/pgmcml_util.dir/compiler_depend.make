# Empty compiler generated dependencies file for pgmcml_util.
# This may be replaced when dependencies are built.
