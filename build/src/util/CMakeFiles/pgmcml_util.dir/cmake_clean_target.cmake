file(REMOVE_RECURSE
  "libpgmcml_util.a"
)
