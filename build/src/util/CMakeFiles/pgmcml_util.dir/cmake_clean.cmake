file(REMOVE_RECURSE
  "CMakeFiles/pgmcml_util.dir/matrix.cpp.o"
  "CMakeFiles/pgmcml_util.dir/matrix.cpp.o.d"
  "CMakeFiles/pgmcml_util.dir/stats.cpp.o"
  "CMakeFiles/pgmcml_util.dir/stats.cpp.o.d"
  "CMakeFiles/pgmcml_util.dir/table.cpp.o"
  "CMakeFiles/pgmcml_util.dir/table.cpp.o.d"
  "CMakeFiles/pgmcml_util.dir/waveform.cpp.o"
  "CMakeFiles/pgmcml_util.dir/waveform.cpp.o.d"
  "libpgmcml_util.a"
  "libpgmcml_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmcml_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
