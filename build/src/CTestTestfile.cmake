# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("spice")
subdirs("mcml")
subdirs("cells")
subdirs("netlist")
subdirs("synth")
subdirs("aes")
subdirs("power")
subdirs("sca")
subdirs("or1k")
subdirs("core")
