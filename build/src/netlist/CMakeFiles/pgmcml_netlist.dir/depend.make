# Empty dependencies file for pgmcml_netlist.
# This may be replaced when dependencies are built.
