
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/design.cpp" "src/netlist/CMakeFiles/pgmcml_netlist.dir/design.cpp.o" "gcc" "src/netlist/CMakeFiles/pgmcml_netlist.dir/design.cpp.o.d"
  "/root/repo/src/netlist/export.cpp" "src/netlist/CMakeFiles/pgmcml_netlist.dir/export.cpp.o" "gcc" "src/netlist/CMakeFiles/pgmcml_netlist.dir/export.cpp.o.d"
  "/root/repo/src/netlist/logicsim.cpp" "src/netlist/CMakeFiles/pgmcml_netlist.dir/logicsim.cpp.o" "gcc" "src/netlist/CMakeFiles/pgmcml_netlist.dir/logicsim.cpp.o.d"
  "/root/repo/src/netlist/place.cpp" "src/netlist/CMakeFiles/pgmcml_netlist.dir/place.cpp.o" "gcc" "src/netlist/CMakeFiles/pgmcml_netlist.dir/place.cpp.o.d"
  "/root/repo/src/netlist/sdf.cpp" "src/netlist/CMakeFiles/pgmcml_netlist.dir/sdf.cpp.o" "gcc" "src/netlist/CMakeFiles/pgmcml_netlist.dir/sdf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cells/CMakeFiles/pgmcml_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/mcml/CMakeFiles/pgmcml_mcml.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/pgmcml_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgmcml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
