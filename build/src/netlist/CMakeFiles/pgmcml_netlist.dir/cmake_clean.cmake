file(REMOVE_RECURSE
  "CMakeFiles/pgmcml_netlist.dir/design.cpp.o"
  "CMakeFiles/pgmcml_netlist.dir/design.cpp.o.d"
  "CMakeFiles/pgmcml_netlist.dir/export.cpp.o"
  "CMakeFiles/pgmcml_netlist.dir/export.cpp.o.d"
  "CMakeFiles/pgmcml_netlist.dir/logicsim.cpp.o"
  "CMakeFiles/pgmcml_netlist.dir/logicsim.cpp.o.d"
  "CMakeFiles/pgmcml_netlist.dir/place.cpp.o"
  "CMakeFiles/pgmcml_netlist.dir/place.cpp.o.d"
  "CMakeFiles/pgmcml_netlist.dir/sdf.cpp.o"
  "CMakeFiles/pgmcml_netlist.dir/sdf.cpp.o.d"
  "libpgmcml_netlist.a"
  "libpgmcml_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmcml_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
