file(REMOVE_RECURSE
  "libpgmcml_netlist.a"
)
