# Empty dependencies file for pgmcml_mcml.
# This may be replaced when dependencies are built.
