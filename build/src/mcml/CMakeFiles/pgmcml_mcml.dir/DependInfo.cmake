
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcml/area.cpp" "src/mcml/CMakeFiles/pgmcml_mcml.dir/area.cpp.o" "gcc" "src/mcml/CMakeFiles/pgmcml_mcml.dir/area.cpp.o.d"
  "/root/repo/src/mcml/bias.cpp" "src/mcml/CMakeFiles/pgmcml_mcml.dir/bias.cpp.o" "gcc" "src/mcml/CMakeFiles/pgmcml_mcml.dir/bias.cpp.o.d"
  "/root/repo/src/mcml/builder.cpp" "src/mcml/CMakeFiles/pgmcml_mcml.dir/builder.cpp.o" "gcc" "src/mcml/CMakeFiles/pgmcml_mcml.dir/builder.cpp.o.d"
  "/root/repo/src/mcml/cells.cpp" "src/mcml/CMakeFiles/pgmcml_mcml.dir/cells.cpp.o" "gcc" "src/mcml/CMakeFiles/pgmcml_mcml.dir/cells.cpp.o.d"
  "/root/repo/src/mcml/characterize.cpp" "src/mcml/CMakeFiles/pgmcml_mcml.dir/characterize.cpp.o" "gcc" "src/mcml/CMakeFiles/pgmcml_mcml.dir/characterize.cpp.o.d"
  "/root/repo/src/mcml/design.cpp" "src/mcml/CMakeFiles/pgmcml_mcml.dir/design.cpp.o" "gcc" "src/mcml/CMakeFiles/pgmcml_mcml.dir/design.cpp.o.d"
  "/root/repo/src/mcml/dycml.cpp" "src/mcml/CMakeFiles/pgmcml_mcml.dir/dycml.cpp.o" "gcc" "src/mcml/CMakeFiles/pgmcml_mcml.dir/dycml.cpp.o.d"
  "/root/repo/src/mcml/montecarlo.cpp" "src/mcml/CMakeFiles/pgmcml_mcml.dir/montecarlo.cpp.o" "gcc" "src/mcml/CMakeFiles/pgmcml_mcml.dir/montecarlo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spice/CMakeFiles/pgmcml_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgmcml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
