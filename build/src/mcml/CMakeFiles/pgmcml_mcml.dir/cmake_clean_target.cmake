file(REMOVE_RECURSE
  "libpgmcml_mcml.a"
)
