file(REMOVE_RECURSE
  "CMakeFiles/pgmcml_mcml.dir/area.cpp.o"
  "CMakeFiles/pgmcml_mcml.dir/area.cpp.o.d"
  "CMakeFiles/pgmcml_mcml.dir/bias.cpp.o"
  "CMakeFiles/pgmcml_mcml.dir/bias.cpp.o.d"
  "CMakeFiles/pgmcml_mcml.dir/builder.cpp.o"
  "CMakeFiles/pgmcml_mcml.dir/builder.cpp.o.d"
  "CMakeFiles/pgmcml_mcml.dir/cells.cpp.o"
  "CMakeFiles/pgmcml_mcml.dir/cells.cpp.o.d"
  "CMakeFiles/pgmcml_mcml.dir/characterize.cpp.o"
  "CMakeFiles/pgmcml_mcml.dir/characterize.cpp.o.d"
  "CMakeFiles/pgmcml_mcml.dir/design.cpp.o"
  "CMakeFiles/pgmcml_mcml.dir/design.cpp.o.d"
  "CMakeFiles/pgmcml_mcml.dir/dycml.cpp.o"
  "CMakeFiles/pgmcml_mcml.dir/dycml.cpp.o.d"
  "CMakeFiles/pgmcml_mcml.dir/montecarlo.cpp.o"
  "CMakeFiles/pgmcml_mcml.dir/montecarlo.cpp.o.d"
  "libpgmcml_mcml.a"
  "libpgmcml_mcml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgmcml_mcml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
