# Empty compiler generated dependencies file for pgmcml_mcml.
# This may be replaced when dependencies are built.
