file(REMOVE_RECURSE
  "CMakeFiles/cpa_attack.dir/cpa_attack.cpp.o"
  "CMakeFiles/cpa_attack.dir/cpa_attack.cpp.o.d"
  "cpa_attack"
  "cpa_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpa_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
