file(REMOVE_RECURSE
  "CMakeFiles/sbox_ise_power.dir/sbox_ise_power.cpp.o"
  "CMakeFiles/sbox_ise_power.dir/sbox_ise_power.cpp.o.d"
  "sbox_ise_power"
  "sbox_ise_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbox_ise_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
