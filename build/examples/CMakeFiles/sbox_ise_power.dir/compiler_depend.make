# Empty compiler generated dependencies file for sbox_ise_power.
# This may be replaced when dependencies are built.
