file(REMOVE_RECURSE
  "CMakeFiles/export_flow.dir/export_flow.cpp.o"
  "CMakeFiles/export_flow.dir/export_flow.cpp.o.d"
  "export_flow"
  "export_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
