# Empty dependencies file for export_flow.
# This may be replaced when dependencies are built.
