
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aes/test_aes.cpp" "tests/CMakeFiles/pgmcml_tests.dir/aes/test_aes.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/aes/test_aes.cpp.o.d"
  "/root/repo/tests/cells/test_library.cpp" "tests/CMakeFiles/pgmcml_tests.dir/cells/test_library.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/cells/test_library.cpp.o.d"
  "/root/repo/tests/core/test_aes_core.cpp" "tests/CMakeFiles/pgmcml_tests.dir/core/test_aes_core.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/core/test_aes_core.cpp.o.d"
  "/root/repo/tests/core/test_core.cpp" "tests/CMakeFiles/pgmcml_tests.dir/core/test_core.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/core/test_core.cpp.o.d"
  "/root/repo/tests/export/test_export.cpp" "tests/CMakeFiles/pgmcml_tests.dir/export/test_export.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/export/test_export.cpp.o.d"
  "/root/repo/tests/mcml/test_area.cpp" "tests/CMakeFiles/pgmcml_tests.dir/mcml/test_area.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/mcml/test_area.cpp.o.d"
  "/root/repo/tests/mcml/test_bias.cpp" "tests/CMakeFiles/pgmcml_tests.dir/mcml/test_bias.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/mcml/test_bias.cpp.o.d"
  "/root/repo/tests/mcml/test_builder_logic.cpp" "tests/CMakeFiles/pgmcml_tests.dir/mcml/test_builder_logic.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/mcml/test_builder_logic.cpp.o.d"
  "/root/repo/tests/mcml/test_cells_meta.cpp" "tests/CMakeFiles/pgmcml_tests.dir/mcml/test_cells_meta.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/mcml/test_cells_meta.cpp.o.d"
  "/root/repo/tests/mcml/test_characterize.cpp" "tests/CMakeFiles/pgmcml_tests.dir/mcml/test_characterize.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/mcml/test_characterize.cpp.o.d"
  "/root/repo/tests/mcml/test_dycml.cpp" "tests/CMakeFiles/pgmcml_tests.dir/mcml/test_dycml.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/mcml/test_dycml.cpp.o.d"
  "/root/repo/tests/mcml/test_gating.cpp" "tests/CMakeFiles/pgmcml_tests.dir/mcml/test_gating.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/mcml/test_gating.cpp.o.d"
  "/root/repo/tests/mcml/test_library_sweep.cpp" "tests/CMakeFiles/pgmcml_tests.dir/mcml/test_library_sweep.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/mcml/test_library_sweep.cpp.o.d"
  "/root/repo/tests/mcml/test_montecarlo.cpp" "tests/CMakeFiles/pgmcml_tests.dir/mcml/test_montecarlo.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/mcml/test_montecarlo.cpp.o.d"
  "/root/repo/tests/netlist/test_design.cpp" "tests/CMakeFiles/pgmcml_tests.dir/netlist/test_design.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/netlist/test_design.cpp.o.d"
  "/root/repo/tests/netlist/test_lint.cpp" "tests/CMakeFiles/pgmcml_tests.dir/netlist/test_lint.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/netlist/test_lint.cpp.o.d"
  "/root/repo/tests/netlist/test_logicsim.cpp" "tests/CMakeFiles/pgmcml_tests.dir/netlist/test_logicsim.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/netlist/test_logicsim.cpp.o.d"
  "/root/repo/tests/netlist/test_place.cpp" "tests/CMakeFiles/pgmcml_tests.dir/netlist/test_place.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/netlist/test_place.cpp.o.d"
  "/root/repo/tests/netlist/test_sdf.cpp" "tests/CMakeFiles/pgmcml_tests.dir/netlist/test_sdf.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/netlist/test_sdf.cpp.o.d"
  "/root/repo/tests/or1k/test_or1k.cpp" "tests/CMakeFiles/pgmcml_tests.dir/or1k/test_or1k.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/or1k/test_or1k.cpp.o.d"
  "/root/repo/tests/power/test_integrity.cpp" "tests/CMakeFiles/pgmcml_tests.dir/power/test_integrity.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/power/test_integrity.cpp.o.d"
  "/root/repo/tests/power/test_power.cpp" "tests/CMakeFiles/pgmcml_tests.dir/power/test_power.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/power/test_power.cpp.o.d"
  "/root/repo/tests/property/test_properties.cpp" "tests/CMakeFiles/pgmcml_tests.dir/property/test_properties.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/property/test_properties.cpp.o.d"
  "/root/repo/tests/sca/test_sca.cpp" "tests/CMakeFiles/pgmcml_tests.dir/sca/test_sca.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/sca/test_sca.cpp.o.d"
  "/root/repo/tests/sca/test_second_order.cpp" "tests/CMakeFiles/pgmcml_tests.dir/sca/test_second_order.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/sca/test_second_order.cpp.o.d"
  "/root/repo/tests/sca/test_tvla.cpp" "tests/CMakeFiles/pgmcml_tests.dir/sca/test_tvla.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/sca/test_tvla.cpp.o.d"
  "/root/repo/tests/spice/test_dc.cpp" "tests/CMakeFiles/pgmcml_tests.dir/spice/test_dc.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/spice/test_dc.cpp.o.d"
  "/root/repo/tests/spice/test_dc_sweep.cpp" "tests/CMakeFiles/pgmcml_tests.dir/spice/test_dc_sweep.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/spice/test_dc_sweep.cpp.o.d"
  "/root/repo/tests/spice/test_mosfet.cpp" "tests/CMakeFiles/pgmcml_tests.dir/spice/test_mosfet.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/spice/test_mosfet.cpp.o.d"
  "/root/repo/tests/spice/test_robustness.cpp" "tests/CMakeFiles/pgmcml_tests.dir/spice/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/spice/test_robustness.cpp.o.d"
  "/root/repo/tests/spice/test_technology.cpp" "tests/CMakeFiles/pgmcml_tests.dir/spice/test_technology.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/spice/test_technology.cpp.o.d"
  "/root/repo/tests/spice/test_transient.cpp" "tests/CMakeFiles/pgmcml_tests.dir/spice/test_transient.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/spice/test_transient.cpp.o.d"
  "/root/repo/tests/synth/test_map_and_lut.cpp" "tests/CMakeFiles/pgmcml_tests.dir/synth/test_map_and_lut.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/synth/test_map_and_lut.cpp.o.d"
  "/root/repo/tests/synth/test_module.cpp" "tests/CMakeFiles/pgmcml_tests.dir/synth/test_module.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/synth/test_module.cpp.o.d"
  "/root/repo/tests/synth/test_sleep_tree.cpp" "tests/CMakeFiles/pgmcml_tests.dir/synth/test_sleep_tree.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/synth/test_sleep_tree.cpp.o.d"
  "/root/repo/tests/util/test_matrix.cpp" "tests/CMakeFiles/pgmcml_tests.dir/util/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/util/test_matrix.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/pgmcml_tests.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/CMakeFiles/pgmcml_tests.dir/util/test_stats.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/util/test_stats.cpp.o.d"
  "/root/repo/tests/util/test_table.cpp" "tests/CMakeFiles/pgmcml_tests.dir/util/test_table.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/util/test_table.cpp.o.d"
  "/root/repo/tests/util/test_waveform.cpp" "tests/CMakeFiles/pgmcml_tests.dir/util/test_waveform.cpp.o" "gcc" "tests/CMakeFiles/pgmcml_tests.dir/util/test_waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pgmcml_core.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pgmcml_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sca/CMakeFiles/pgmcml_sca.dir/DependInfo.cmake"
  "/root/repo/build/src/or1k/CMakeFiles/pgmcml_or1k.dir/DependInfo.cmake"
  "/root/repo/build/src/aes/CMakeFiles/pgmcml_aes.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/pgmcml_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/pgmcml_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/pgmcml_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/mcml/CMakeFiles/pgmcml_mcml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgmcml_util.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/pgmcml_spice.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
