# Empty dependencies file for pgmcml_tests.
# This may be replaced when dependencies are built.
