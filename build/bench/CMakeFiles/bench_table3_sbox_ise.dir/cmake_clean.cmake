file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_sbox_ise.dir/bench_table3_sbox_ise.cpp.o"
  "CMakeFiles/bench_table3_sbox_ise.dir/bench_table3_sbox_ise.cpp.o.d"
  "bench_table3_sbox_ise"
  "bench_table3_sbox_ise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_sbox_ise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
