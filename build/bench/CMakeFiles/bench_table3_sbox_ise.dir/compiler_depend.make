# Empty compiler generated dependencies file for bench_table3_sbox_ise.
# This may be replaced when dependencies are built.
