# Empty dependencies file for bench_table2_library.
# This may be replaced when dependencies are built.
