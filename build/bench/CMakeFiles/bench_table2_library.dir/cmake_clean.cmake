file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_library.dir/bench_table2_library.cpp.o"
  "CMakeFiles/bench_table2_library.dir/bench_table2_library.cpp.o.d"
  "bench_table2_library"
  "bench_table2_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
