
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_aes_core.cpp" "bench/CMakeFiles/bench_ext_aes_core.dir/bench_ext_aes_core.cpp.o" "gcc" "bench/CMakeFiles/bench_ext_aes_core.dir/bench_ext_aes_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pgmcml_core.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pgmcml_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sca/CMakeFiles/pgmcml_sca.dir/DependInfo.cmake"
  "/root/repo/build/src/or1k/CMakeFiles/pgmcml_or1k.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/pgmcml_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/pgmcml_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/pgmcml_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/mcml/CMakeFiles/pgmcml_mcml.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/pgmcml_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/aes/CMakeFiles/pgmcml_aes.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgmcml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
