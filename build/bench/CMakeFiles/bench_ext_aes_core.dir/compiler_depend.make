# Empty compiler generated dependencies file for bench_ext_aes_core.
# This may be replaced when dependencies are built.
