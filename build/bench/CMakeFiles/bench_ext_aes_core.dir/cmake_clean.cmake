file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_aes_core.dir/bench_ext_aes_core.cpp.o"
  "CMakeFiles/bench_ext_aes_core.dir/bench_ext_aes_core.cpp.o.d"
  "bench_ext_aes_core"
  "bench_ext_aes_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_aes_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
