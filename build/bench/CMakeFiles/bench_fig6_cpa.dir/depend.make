# Empty dependencies file for bench_fig6_cpa.
# This may be replaced when dependencies are built.
