file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_cpa.dir/bench_fig6_cpa.cpp.o"
  "CMakeFiles/bench_fig6_cpa.dir/bench_fig6_cpa.cpp.o.d"
  "bench_fig6_cpa"
  "bench_fig6_cpa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cpa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
