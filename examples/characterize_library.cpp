// Library-designer workflow: retarget the PG-MCML library to a different
// operating point and re-characterize it at transistor level -- swing
// sensitivity, process corners, and drive strengths, the knobs Section 5
// discusses.
//
// Usage: ./build/examples/characterize_library
#include <cstdio>

#include "pgmcml/mcml/bias.hpp"
#include "pgmcml/mcml/characterize.hpp"
#include "pgmcml/util/table.hpp"

int main() {
  using namespace pgmcml;
  using mcml::CellKind;

  // --- swing sensitivity -------------------------------------------------------
  util::Table t1("Swing retargeting (buffer, Iss = 50 uA)");
  t1.header({"Vsw [V]", "Vn", "Vp", "delay", "sleep leakage"});
  for (double vsw : {0.3, 0.4, 0.5}) {
    mcml::McmlDesign d;
    d.vsw = vsw;
    mcml::solve_bias(d);  // expose the solved voltages for the printout
    const auto ch = mcml::characterize_cell(CellKind::kBuf, d, 1);
    if (!ch.ok) {
      t1.row({util::Table::num(vsw, 1), "-", "-", "FAIL: " + ch.error, "-"});
      continue;
    }
    t1.row({util::Table::num(vsw, 1), util::Table::num(d.vn, 3),
            util::Table::num(d.vp, 3), util::Table::eng(ch.delay, "s"),
            util::Table::eng(ch.sleep_current, "A")});
  }
  t1.print();

  // --- process corners ----------------------------------------------------------
  util::Table t2("\nProcess corners (buffer, retargeted per corner)");
  t2.header({"Corner", "Vdd", "Vn", "Vp", "delay", "Istat [uA]"});
  for (spice::Corner corner :
       {spice::Corner::kSlow, spice::Corner::kTypical, spice::Corner::kFast}) {
    mcml::McmlDesign d;
    d.tech = spice::Technology(corner);
    mcml::solve_bias(d);
    const auto ch = mcml::characterize_cell(CellKind::kBuf, d, 1);
    if (!ch.ok) {
      t2.row({to_string(corner), util::Table::num(d.tech.vdd(), 2), "-", "-",
              "FAIL: " + ch.error, "-"});
      continue;
    }
    t2.row({to_string(corner), util::Table::num(d.tech.vdd(), 2),
            util::Table::num(d.vn, 3), util::Table::num(d.vp, 3),
            util::Table::eng(ch.delay, "s"),
            util::Table::num(ch.static_current * 1e6, 1)});
  }
  t2.print();

  // --- drive strengths ------------------------------------------------------------
  util::Table t3("\nDrive strengths (buffer, FO4 load of its own size)");
  t3.header({"Drive", "Iss [uA]", "delay FO4", "Istat [uA]"});
  for (double drive : {1.0, 2.0, 4.0}) {
    mcml::McmlDesign d;
    d.drive = drive;
    const auto ch = mcml::characterize_cell(CellKind::kBuf, d, 4);
    if (!ch.ok) {
      t3.row({util::Table::num(drive, 0), "-", "FAIL: " + ch.error, "-"});
      continue;
    }
    t3.row({"X" + util::Table::num(drive, 0),
            util::Table::num(d.eff_iss() * 1e6, 0),
            util::Table::eng(ch.delay, "s"),
            util::Table::num(ch.static_current * 1e6, 1)});
  }
  t3.print();
  return 0;
}
