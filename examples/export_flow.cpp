// EDA hand-off workflow: generate the artifacts a physical-design team would
// consume -- the Liberty library, the mapped structural Verilog, the VCD of
// a gate-level run, and a SPICE deck of one generated cell.
//
// Usage: ./build/examples/export_flow [output_dir]   (default /tmp/pgmcml)
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "pgmcml/cells/liberty.hpp"
#include "pgmcml/core/sbox_unit.hpp"
#include "pgmcml/mcml/builder.hpp"
#include "pgmcml/netlist/export.hpp"
#include "pgmcml/netlist/logicsim.hpp"
#include "pgmcml/spice/deck.hpp"

int main(int argc, char** argv) {
  using namespace pgmcml;
  const std::filesystem::path dir = argc > 1 ? argv[1] : "/tmp/pgmcml";
  std::filesystem::create_directories(dir);
  auto write = [&](const std::string& name, const std::string& text) {
    std::ofstream(dir / name) << text;
    std::printf("  wrote %s (%zu bytes)\n", (dir / name).c_str(), text.size());
  };

  std::printf("Exporting EDA artifacts to %s\n", dir.c_str());

  // 1. Liberty views of all three libraries.
  write("cmos90.lib", cells::to_liberty(cells::CellLibrary::cmos90()));
  write("mcml90.lib", cells::to_liberty(cells::CellLibrary::mcml90()));
  write("pgmcml90.lib", cells::to_liberty(cells::CellLibrary::pgmcml90()));

  // 2. The reduced-AES netlist mapped to PG-MCML, as structural Verilog.
  const auto lib = cells::CellLibrary::pgmcml90();
  const auto mapped = core::map_reduced_aes(lib);
  write("reduced_aes_pgmcml.v", netlist::to_verilog(mapped.design, lib));

  // 3. A gate-level run's switching activity as VCD.
  netlist::LogicSim sim(mapped.design, &lib);
  for (std::size_t i = 0; i < mapped.design.inputs().size(); ++i) {
    sim.set_input(mapped.design.inputs()[i], (i % 3) == 0, 1e-9);
  }
  sim.run_until(5e-9);
  write("reduced_aes_activity.vcd", netlist::to_vcd(mapped.design, sim.events()));

  // 4. SPICE deck of the generated PG-MCML XOR2 cell.
  spice::Circuit cell;
  mcml::McmlDesign design;
  mcml::McmlRails rails;
  rails.vdd = cell.node("vdd");
  rails.vp = cell.node("vp");
  rails.vn = cell.node("vn");
  rails.sleep_on = cell.node("slp");
  rails.sleep_off = cell.node("slpb");
  mcml::McmlCellBuilder builder(cell, design, rails, "xor2.");
  builder.xor2_stage(builder.make_diff("a"), builder.make_diff("b"));
  write("pgmcml_xor2.sp", spice::to_spice_deck(cell, "PG-MCML XOR2 cell"));

  std::printf("Done.\n");
  return 0;
}
