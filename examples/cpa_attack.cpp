// Security-evaluator workflow: mount a correlation power attack against the
// reduced AES target in each logic style and watch the key rank evolve with
// the number of traces -- the experiment behind Fig. 6.
//
// Usage: ./build/examples/cpa_attack [traces]   (default 3000)
#include <cstdio>
#include <cstdlib>

#include "pgmcml/core/dpa_flow.hpp"
#include "pgmcml/util/table.hpp"

int main(int argc, char** argv) {
  using namespace pgmcml;
  const std::size_t budget = argc > 1 ? std::atoll(argv[1]) : 3000;
  const std::uint8_t secret_key = 0x2b;

  std::printf("Attacking sbox(p ^ k), secret key = 0x%02x, up to %zu traces\n\n",
              secret_key, budget);

  for (const cells::CellLibrary& lib :
       {cells::CellLibrary::cmos90(), cells::CellLibrary::mcml90(),
        cells::CellLibrary::pgmcml90()}) {
    core::DpaFlowOptions opt;
    opt.num_traces = budget;
    opt.key = secret_key;
    opt.samples = 600;
    const sca::TraceSet traces = core::acquire_reduced_aes_traces(lib, opt);

    util::Table t("CPA vs trace count -- " + lib.name());
    t.header({"traces", "key rank", "best guess", "corr(true)", "margin"});
    for (std::size_t n = budget / 8; n <= budget; n += budget / 8) {
      const sca::CpaResult r = sca::cpa_attack(traces.prefix(n));
      t.row({std::to_string(n), std::to_string(r.key_rank(secret_key)),
             std::to_string(r.best_guess),
             util::Table::num(r.peak_correlation[secret_key], 4),
             util::Table::num(r.margin(secret_key), 4)});
    }
    t.print();

    const sca::CpaResult final_r = sca::cpa_attack(traces);
    if (final_r.key_rank(secret_key) == 0) {
      std::printf(">>> %s: KEY DISCLOSED (0x%02x)\n\n", lib.name().c_str(),
                  final_r.best_guess);
    } else {
      std::printf(">>> %s: key not distinguishable (rank %d of 256)\n\n",
                  lib.name().c_str(), final_r.key_rank(secret_key));
    }
  }
  return 0;
}
