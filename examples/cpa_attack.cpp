// Security-evaluator workflow: mount a correlation power attack against the
// reduced AES target in each logic style and watch the key rank evolve with
// the number of traces -- the experiment behind Fig. 6.
//
// The campaign streams once through the acquisition source; every table row
// is a snapshot of the same accumulator, so the rank-vs-traces curve costs
// one pass and one batch of resident traces instead of eight prefix reruns
// over a materialized trace matrix.
//
// Usage: ./build/examples/cpa_attack [traces]   (default 3000)
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "pgmcml/core/dpa_flow.hpp"
#include "pgmcml/sca/accumulator.hpp"
#include "pgmcml/util/table.hpp"

int main(int argc, char** argv) {
  using namespace pgmcml;
  const std::size_t budget = argc > 1 ? std::atoll(argv[1]) : 3000;
  const std::uint8_t secret_key = 0x2b;
  const std::size_t checkpoint = std::max<std::size_t>(1, budget / 8);

  std::printf("Attacking sbox(p ^ k), secret key = 0x%02x, up to %zu traces\n\n",
              secret_key, budget);

  for (const cells::CellLibrary& lib :
       {cells::CellLibrary::cmos90(), cells::CellLibrary::mcml90(),
        cells::CellLibrary::pgmcml90()}) {
    core::DpaFlowOptions opt;
    opt.num_traces = budget;
    opt.key = secret_key;
    opt.samples = 600;
    opt.batch_size = checkpoint;  // one snapshot per streamed batch
    auto source = core::make_acquisition_source(lib, opt);

    util::Table t("CPA vs trace count -- " + lib.name());
    t.header({"traces", "key rank", "best guess", "corr(true)", "margin"});
    sca::CpaAccumulator acc(sca::LeakageModel::kHammingWeight, opt.samples);
    sca::TraceBatch batch;
    while (source->next(batch)) {
      acc.add_batch(batch);
      const sca::CpaResult r = acc.snapshot();
      t.row({std::to_string(acc.num_traces()),
             std::to_string(r.key_rank(secret_key)),
             std::to_string(r.best_guess),
             util::Table::num(r.peak_correlation[secret_key], 4),
             util::Table::num(r.margin(secret_key), 4)});
    }
    t.print();

    const sca::CpaResult final_r = acc.snapshot();
    if (final_r.key_rank(secret_key) == 0) {
      std::printf(">>> %s: KEY DISCLOSED (0x%02x)\n\n", lib.name().c_str(),
                  final_r.best_guess);
    } else {
      std::printf(">>> %s: key not distinguishable (rank %d of 256)\n\n",
                  lib.name().c_str(), final_r.key_rank(secret_key));
    }
  }
  return 0;
}
