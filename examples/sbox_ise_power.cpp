// Battery-budget workflow: the paper's motivating scenario.  A smart-card
// class device runs AES occasionally; how much does the DPA-protected S-box
// unit cost in average power as a function of how often crypto runs?
//
// Sweeps the crypto duty cycle (via idle cycles between encryptions) and
// prints the Table 3 power columns per operating point -- showing where
// conventional MCML is prohibitive and PG-MCML matches the CMOS budget.
//
// Usage: ./build/examples/sbox_ise_power
#include <cstdio>

#include "pgmcml/core/ise_experiment.hpp"
#include "pgmcml/or1k/aes_program.hpp"
#include "pgmcml/util/table.hpp"

int main() {
  using namespace pgmcml;

  // CPU-side view first: what does one AES cost on the processor?
  const auto one = or1k::run_aes_program({}, {}, {true, 1, 0});
  std::printf("One AES-128 block on the OpenRISC-style core: %llu cycles, "
              "%zu l.sbox executions\n\n",
              static_cast<unsigned long long>(one.cycles),
              one.ise_executions);

  util::Table t("Average S-box-unit power vs crypto duty cycle (400 MHz)");
  t.header({"idle cycles/block", "ISE duty", "CMOS", "MCML", "PG-MCML",
            "MCML/PG ratio"});
  for (int spin : {0, 2'000, 20'000, 200'000, 2'000'000}) {
    core::IseExperimentOptions opt;
    opt.blocks = 2;
    opt.idle_spin = spin;
    const auto rows = core::run_ise_experiment(opt);
    char duty[32];
    std::snprintf(duty, sizeof(duty), "%.4f%%", rows[0].duty * 100);
    t.row({std::to_string(spin), duty,
           util::Table::eng(rows[0].avg_power, "W"),
           util::Table::eng(rows[1].avg_power, "W"),
           util::Table::eng(rows[2].avg_power, "W"),
           util::Table::num(rows[1].avg_power / rows[2].avg_power, 0) + "x"});
  }
  t.print();

  std::printf(
      "\nReading: MCML burns the same regardless of duty (its static current "
      "never stops);\nPG-MCML tracks the duty cycle and approaches the "
      "CMOS budget as crypto idles -- the\npaper's enabling result for "
      "battery-operated DPA-resistant devices.\n");
  return 0;
}
