// Quickstart: the library in ~80 lines.
//
//  1. Solve the bias point of the PG-MCML cell library at 50 uA / 0.4 V.
//  2. Characterize a cell at transistor level (delay, static current,
//     gated-off leakage, wake-up time).
//  3. Synthesize the reduced AES target, map it to PG-MCML, and check the
//     power-gating numbers at the block level.
//
// Build tree: ./build/examples/quickstart
#include <cstdio>

#include "pgmcml/cells/library.hpp"
#include "pgmcml/core/sbox_unit.hpp"
#include "pgmcml/mcml/bias.hpp"
#include "pgmcml/mcml/characterize.hpp"
#include "pgmcml/util/table.hpp"
#include "pgmcml/util/units.hpp"

int main() {
  using namespace pgmcml;

  // --- 1. bias the library ---------------------------------------------------
  mcml::McmlDesign design;  // defaults: PG-MCML, Iss = 50 uA, Vsw = 0.4 V
  const mcml::BiasResult bias = mcml::solve_bias(design);
  if (!bias.ok) {
    std::printf("bias solve failed: %s\n", bias.error.c_str());
    return 1;
  }
  std::printf("Bias point: Vn = %.3f V, Vp = %.3f V  ->  Iss = %.1f uA, "
              "swing = %.3f V\n\n",
              bias.vn, bias.vp, bias.achieved_iss * 1e6, bias.achieved_vsw);

  // --- 2. characterize a cell through the SPICE engine -----------------------
  const mcml::CellCharacterization buf =
      mcml::characterize_cell(mcml::CellKind::kBuf, design, /*fanout=*/1);
  std::printf("PG-MCML buffer (transistor level):\n");
  std::printf("  delay (FO1)        : %s\n",
              util::si_string(buf.delay, "s").c_str());
  std::printf("  static current     : %s\n",
              util::si_string(buf.static_current, "A").c_str());
  std::printf("  gated-off leakage  : %s  (%.0fx cut)\n",
              util::si_string(buf.sleep_current, "A").c_str(),
              buf.static_current / buf.sleep_current);
  std::printf("  wake-up time       : %s\n\n",
              util::si_string(buf.wake_time, "s").c_str());

  // --- 3. map a real block and compare the three libraries -------------------
  util::Table t("Reduced AES (AddRoundKey + S-box), mapped per style");
  t.header({"Style", "cells", "area [um^2]", "critical path"});
  for (const cells::CellLibrary& lib :
       {cells::CellLibrary::cmos90(), cells::CellLibrary::mcml90(),
        cells::CellLibrary::pgmcml90()}) {
    const synth::MapResult mapped = core::map_reduced_aes(lib);
    const netlist::Design::Stats stats = mapped.design.stats(lib);
    t.row({to_string(lib.style()), std::to_string(stats.cells),
           util::Table::num(stats.area / util::um2, 1),
           util::si_string(stats.critical_path, "s")});
  }
  t.print();
  return 0;
}
