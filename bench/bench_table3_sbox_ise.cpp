// Reproduces Table 3: the S-box ISE implemented in CMOS / MCML / PG-MCML --
// cell count, area, delay, and average power while the OpenRISC-style CPU
// runs AES.  The headline result: PG-MCML cuts the MCML average power by
// orders of magnitude (the paper reports ~10^4 at 0.01 % ISE duty) and lands
// in static CMOS's power class.
#include <benchmark/benchmark.h>

#include "bench_manifest.hpp"

#include <cstdio>

#include "pgmcml/core/ise_experiment.hpp"
#include "pgmcml/or1k/aes_program.hpp"
#include "pgmcml/util/table.hpp"
#include "pgmcml/util/units.hpp"

namespace {

using namespace pgmcml;

void print_table3() {
  // Two workload scenarios: back-to-back AES (duty ~2 %) and the paper's
  // crypto-mostly-idle scenario (idle spin diluting the duty towards 0.01 %).
  struct Scenario {
    const char* name;
    core::IseExperimentOptions opt;
  };
  Scenario scenarios[2];
  scenarios[0].name = "back-to-back AES (busy crypto)";
  scenarios[0].opt.blocks = 10;
  scenarios[0].opt.idle_spin = 0;
  scenarios[1].name = "paper scenario: crypto idle most of the time";
  scenarios[1].opt.blocks = 4;
  scenarios[1].opt.idle_spin = 398'000;  // duty ~1e-4 = the paper's 0.01 %

  for (const Scenario& sc : scenarios) {
    const auto rows = core::run_ise_experiment(sc.opt);
    util::Table t(std::string("Table 3 -- S-box ISE, ") + sc.name);
    t.header({"", "CMOS", "MCML", "PG-MCML"});
    auto col = [&](auto f) {
      return std::vector<std::string>{f(rows[0]), f(rows[1]), f(rows[2])};
    };
    auto push = [&](const char* label, auto f) {
      auto c = col(f);
      t.row({label, c[0], c[1], c[2]});
    };
    push("Cells", [](const core::IseStyleResult& r) {
      return std::to_string(r.cells);
    });
    push("Area [um^2]", [](const core::IseStyleResult& r) {
      return util::Table::num(r.area / util::um2, 1);
    });
    push("Delay [ns]", [](const core::IseStyleResult& r) {
      return util::Table::num(r.critical_path / util::ns, 3);
    });
    push("Avg power", [](const core::IseStyleResult& r) {
      return util::Table::eng(r.avg_power, "W");
    });
    push("Active power", [](const core::IseStyleResult& r) {
      return util::Table::eng(r.active_power, "W");
    });
    push("Idle power", [](const core::IseStyleResult& r) {
      return util::Table::eng(r.idle_power, "W");
    });
    t.print();
    std::printf("ISE duty cycle: %.5f%%   (paper: 0.01%%)\n", rows[0].duty * 100);
    std::printf("MCML / PG-MCML average power ratio: %.0fx   (paper: ~10^4)\n",
                rows[1].avg_power / rows[2].avg_power);
    std::printf("CMOS / PG-MCML average power ratio: %.1fx   (paper: ~4)\n\n",
                rows[0].avg_power / rows[2].avg_power);
  }

  // The software side: AES with and without the ISE.
  const auto with_ise = or1k::run_aes_program({}, {}, {true, 1, 0});
  const auto without = or1k::run_aes_program({}, {}, {false, 1, 0});
  util::Table sw("CPU-side profile (one AES-128 block)");
  sw.header({"variant", "cycles", "l.sbox executions"});
  sw.row({"S-box ISE", std::to_string(with_ise.cycles),
          std::to_string(with_ise.ise_executions)});
  sw.row({"pure software", std::to_string(without.cycles),
          std::to_string(without.ise_executions)});
  sw.print();
  std::printf("\n");
}

void BM_IseExperiment(benchmark::State& state) {
  core::IseExperimentOptions opt;
  opt.blocks = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_ise_experiment(opt));
  }
}
BENCHMARK(BM_IseExperiment)->Unit(benchmark::kMillisecond);

void BM_AesOnCpu(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(or1k::run_aes_program({}, {}, {true, 1, 0}));
  }
}
BENCHMARK(BM_AesOnCpu)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  pgmcml::bench::Manifest manifest("table3_sbox_ise");
  print_table3();
  manifest.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
