// Ablation over the four power-gating topologies of Fig. 2 -- the design
// study behind the paper's choice of (d), the series sleep transistor:
// awake current accuracy, gated-off leakage, wake-up time, delay cost and
// device count, all measured at transistor level on the buffer cell.
#include <benchmark/benchmark.h>

#include "bench_manifest.hpp"

#include <cstdio>

#include "pgmcml/mcml/characterize.hpp"
#include "pgmcml/util/table.hpp"

namespace {

using namespace pgmcml;
using mcml::GatingTopology;

void print_ablation() {
  util::Table t("Fig. 2 ablation -- power-gating topologies (buffer cell)");
  t.header({"Topology", "devices", "delay", "Iawake [uA]", "Isleep [nA]",
            "wake time", "cut ratio"});
  const GatingTopology topologies[] = {
      GatingTopology::kNone, GatingTopology::kVnPullDown,
      GatingTopology::kVnSwitch, GatingTopology::kBodyBias,
      GatingTopology::kSeriesSleep};
  for (GatingTopology topo : topologies) {
    mcml::McmlDesign d;
    d.gating = topo;
    const auto ch = mcml::characterize_cell(mcml::CellKind::kBuf, d, 1);
    if (!ch.ok) {
      t.row({to_string(topo), "-", "(failed: " + ch.error + ")", "-", "-", "-",
             "-"});
      continue;
    }
    const double cut = ch.static_current / std::max(ch.sleep_current, 1e-15);
    t.row({to_string(topo), std::to_string(ch.transistors),
           util::Table::eng(ch.delay, "s"),
           util::Table::num(ch.static_current * 1e6, 1),
           util::Table::num(ch.sleep_current * 1e9, 2),
           ch.wake_time > 0 ? util::Table::eng(ch.wake_time, "s")
                            : std::string("-"),
           topo == GatingTopology::kNone ? std::string("-")
                                         : util::Table::num(cut, 0) + "x"});
  }
  t.print();
  std::printf(
      "\nPaper's selection rationale reproduced: (a)/(b) need the bias node "
      "re-settled (slow wake, extra devices);\n(c) relies on body bias "
      "(weak cut-off, separate well); (d) adds one stacked device with "
      "negative VGS in sleep -> deepest cut.\n\n");

  // Vt-assignment ablation: the paper uses high-Vt for network/tail/sleep
  // and low-Vt loads.  Compare against an all-low-Vt variant.
  util::Table t2("Vt-assignment ablation (PG-MCML buffer)");
  t2.header({"NMOS network Vt", "delay", "Isleep [nA]"});
  for (spice::VtFlavor vt : {spice::VtFlavor::kHighVt, spice::VtFlavor::kLowVt}) {
    mcml::McmlDesign d;
    d.network_vt = vt;
    const auto ch = mcml::characterize_cell(mcml::CellKind::kBuf, d, 1);
    t2.row({to_string(vt),
            ch.ok ? util::Table::eng(ch.delay, "s") : "FAIL",
            ch.ok ? util::Table::num(ch.sleep_current * 1e9, 2) : "-"});
  }
  t2.print();
  std::printf("\n");
}

void BM_GatingCharacterization(benchmark::State& state) {
  mcml::McmlDesign d;
  d.gating = GatingTopology::kSeriesSleep;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mcml::characterize_cell(mcml::CellKind::kBuf, d, 1));
  }
}
BENCHMARK(BM_GatingCharacterization)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  pgmcml::bench::Manifest manifest("ablation_gating");
  print_ablation();
  manifest.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
