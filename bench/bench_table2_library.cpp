// Reproduces Table 2: area and delay of all 16 PG-MCML cells, plus the
// MCML/CMOS area ratios.  Delays come from the transistor-level SPICE
// characterization of the generated cells (FO1 load, Iss = 50 uA,
// Vsw = 0.4 V); areas from the layout model.  The paper's published delays
// are shown alongside for the EXPERIMENTS.md comparison.
#include <benchmark/benchmark.h>

#include "bench_manifest.hpp"

#include <cstdio>

#include "pgmcml/cache/cache.hpp"
#include "pgmcml/mcml/area.hpp"
#include "pgmcml/mcml/characterize.hpp"
#include "pgmcml/util/table.hpp"
#include "pgmcml/util/units.hpp"

namespace {

using namespace pgmcml;
using mcml::AreaModel;
using mcml::CellKind;

void print_table2() {
  AreaModel area;
  mcml::McmlDesign design;  // PG-MCML, 50 uA, 0.4 V
  util::Table t("Table 2 -- PG-MCML library: area, delay, CMOS ratio");
  t.header({"Cell", "Area [um^2]", "Delay (ours)", "Delay (paper)",
            "MCML/CMOS area", "Istat [uA]", "Isleep [nA]"});
  double ratio_sum = 0.0;
  int ratio_n = 0;
  for (CellKind kind : mcml::all_cells()) {
    const mcml::CellInfo& info = mcml::cell_info(kind);
    const auto ch = mcml::characterize_cell(kind, design, 1);
    std::string ratio = "-";
    if (info.cmos_area_ratio.has_value()) {
      ratio = util::Table::num(*info.cmos_area_ratio, 1);
      ratio_sum += *info.cmos_area_ratio;
      ++ratio_n;
    }
    t.row({info.name, util::Table::num(area.pg_area(kind) / util::um2, 4),
           ch.ok ? util::Table::eng(ch.delay, "s") : ("FAIL: " + ch.error),
           util::Table::eng(info.paper_delay, "s"), ratio,
           ch.ok ? util::Table::num(ch.static_current * 1e6, 1) : "-",
           ch.ok ? util::Table::num(ch.sleep_current * 1e9, 2) : "-"});
  }
  t.print();
  std::printf("Mean MCML/CMOS area ratio: %.2f (paper: 1.6)\n\n",
              ratio_sum / ratio_n);
}

void BM_CharacterizeBuffer(benchmark::State& state) {
  mcml::McmlDesign design;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mcml::characterize_cell(CellKind::kBuf, design, 1));
  }
}
BENCHMARK(BM_CharacterizeBuffer)->Unit(benchmark::kMillisecond);

void BM_CharacterizeFullAdder(benchmark::State& state) {
  mcml::McmlDesign design;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mcml::characterize_cell(CellKind::kFullAdder, design, 1));
  }
}
BENCHMARK(BM_CharacterizeFullAdder)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  pgmcml::bench::Manifest manifest("table2_library");
  print_table2();

  // Result-cache effectiveness (PGMCML_CACHE_DIR): on a warm run every
  // characterization above is a hit and zero transients are solved.
  const pgmcml::cache::ResultCache& rc = pgmcml::cache::ResultCache::global();
  if (rc.enabled()) {
    const pgmcml::cache::ResultCache::Stats stats = rc.stats();
    std::printf("Result cache: %zu hits, %zu misses (hit rate %.2f)\n\n",
                stats.hits, stats.misses, stats.hit_rate());
  }

  manifest.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
