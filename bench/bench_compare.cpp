// Regression gate over two bench manifests:
//
//   bench_compare baseline.json current.json \
//       [--default-threshold R] [--threshold name=R]... [--ignore glob]...
//
// Every gated metric (better == "lower"/"higher") in the baseline must be
// present in the current manifest and must not degrade by more than its
// relative threshold (default 0.25, i.e. 25%).  Metrics matching an
// --ignore glob are skipped -- CI uses this for machine-dependent timings
// while still gating the deterministic solver-effort counters.
//
// Exit codes: 0 = no regression, 1 = regression(s), 2 = usage/IO/schema
// error.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_manifest.hpp"

namespace {

using pgmcml::bench::CompareOptions;
using pgmcml::bench::CompareReport;
using pgmcml::obs::json::Value;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s baseline.json current.json"
               " [--default-threshold R] [--threshold name=R]..."
               " [--ignore glob]...\n",
               argv0);
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string baseline_path = argv[1];
  const std::string current_path = argv[2];

  CompareOptions options;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--default-threshold" && i + 1 < argc) {
      options.default_threshold = std::atof(argv[++i]);
    } else if (arg == "--threshold" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "bench_compare: bad --threshold '%s'\n",
                     spec.c_str());
        return 2;
      }
      options.thresholds.emplace_back(spec.substr(0, eq),
                                      std::atof(spec.c_str() + eq + 1));
    } else if (arg == "--ignore" && i + 1 < argc) {
      options.ignore.push_back(argv[++i]);
    } else {
      return usage(argv[0]);
    }
  }

  std::string baseline_text, current_text;
  if (!read_file(baseline_path, baseline_text)) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n",
                 baseline_path.c_str());
    return 2;
  }
  if (!read_file(current_path, current_text)) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n",
                 current_path.c_str());
    return 2;
  }

  Value baseline, current;
  try {
    baseline = Value::parse(baseline_text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", baseline_path.c_str(),
                 e.what());
    return 2;
  }
  try {
    current = Value::parse(current_text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", current_path.c_str(),
                 e.what());
    return 2;
  }

  const CompareReport report =
      pgmcml::bench::compare_manifests(baseline, current, options);
  std::printf("Comparing %s (baseline) vs %s (current)\n",
              baseline_path.c_str(), current_path.c_str());
  std::fputs(report.render().c_str(), stdout);
  if (!report.errors.empty()) return 2;
  const std::size_t regressions = report.regressions();
  if (regressions > 0) {
    std::printf("%zu metric(s) regressed beyond threshold\n", regressions);
    return 1;
  }
  std::printf("no regressions\n");
  return 0;
}
