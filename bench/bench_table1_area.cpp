// Reproduces Table 1: silicon area of conventional MCML vs PG-MCML cells in
// the 90 nm library (BUFX1, MUX4X1, AND4X1, DLX1), and the ~6 % sleep-
// transistor overhead.  Google-benchmark timings cover the area-model and
// netlist-generation paths; the primary output is the printed table.
#include <benchmark/benchmark.h>

#include "bench_manifest.hpp"

#include <cstdio>

#include "pgmcml/mcml/area.hpp"
#include "pgmcml/mcml/builder.hpp"
#include "pgmcml/util/table.hpp"
#include "pgmcml/util/units.hpp"

namespace {

using namespace pgmcml;
using mcml::AreaModel;
using mcml::CellKind;

void print_table1() {
  AreaModel area;
  util::Table t("Table 1 -- MCML vs PG-MCML cell area, 90 nm");
  t.header({"Cell", "MCML [um^2]", "PG-MCML [um^2]", "overhead"});
  double sum = 0.0;
  int n = 0;
  for (CellKind kind : {CellKind::kBuf, CellKind::kMux4, CellKind::kAnd4,
                        CellKind::kDLatch}) {
    const double m = area.mcml_area(kind) / util::um2;
    const double pg = area.pg_area(kind) / util::um2;
    const char* name = kind == CellKind::kBuf      ? "BUFX1"
                       : kind == CellKind::kMux4   ? "MUX4X1"
                       : kind == CellKind::kAnd4   ? "AND4X1"
                                                   : "DLX1";
    t.row({name, util::Table::num(m, 4), util::Table::num(pg, 4),
           util::Table::num(100.0 * (pg / m - 1.0), 2) + "%"});
    sum += pg / m - 1.0;
    ++n;
  }
  t.print();
  std::printf("Average PG overhead: %.2f%% (paper: ~6%%)\n\n",
              100.0 * sum / n);

  // Transistor-count view of the same cells (the sleep device per stage).
  util::Table t2("Table 1b -- transistor counts (generated netlists)");
  t2.header({"Cell", "MCML devices", "PG-MCML devices", "sleep devices"});
  for (CellKind kind : {CellKind::kBuf, CellKind::kMux4, CellKind::kAnd4,
                        CellKind::kDLatch}) {
    const int plain = mcml::transistor_count(kind, false);
    const int gated = mcml::transistor_count(kind, true);
    t2.row({mcml::to_string(kind), std::to_string(plain),
            std::to_string(gated), std::to_string(gated - plain)});
  }
  t2.print();
  std::printf("\n");
}

void BM_AreaModel(benchmark::State& state) {
  AreaModel area;
  for (auto _ : state) {
    double sum = 0.0;
    for (CellKind kind : mcml::all_cells()) {
      sum += area.pg_area(kind) + area.mcml_area(kind);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_AreaModel);

void BM_NetlistGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcml::transistor_count(CellKind::kMux4, true));
  }
}
BENCHMARK(BM_NetlistGeneration);

}  // namespace

int main(int argc, char** argv) {
  pgmcml::bench::Manifest manifest("table1_area");
  print_table1();
  manifest.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
