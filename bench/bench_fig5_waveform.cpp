// Reproduces Fig. 5: the supply-current waveform of the S-box ISE macro
// around one custom-instruction execution (at 14.4 ns in a 20 ns window),
// for conventional MCML (flat, always burning) and PG-MCML (gated pulse),
// with the sleep signal overlaid.
#include <benchmark/benchmark.h>

#include "bench_manifest.hpp"

#include <cstdio>

#include "pgmcml/core/ise_experiment.hpp"
#include "pgmcml/power/integrity.hpp"
#include "pgmcml/util/table.hpp"
#include "pgmcml/util/units.hpp"

namespace {

using namespace pgmcml;

void print_fig5() {
  const core::Fig5Waveforms w = core::compose_fig5_waveforms();

  std::printf("%s",
              w.mcml.ascii_plot(76, 10, "Fig. 5a -- conventional MCML supply "
                                        "current (always on)").c_str());
  std::printf("%s",
              w.pgmcml.ascii_plot(76, 10, "\nFig. 5b -- PG-MCML supply "
                                          "current (gated pulse)").c_str());
  std::printf("%s",
              w.sleep.ascii_plot(76, 6, "\nSleep signal (1 = awake)").c_str());

  util::Table t("Fig. 5 -- summary");
  t.header({"quantity", "MCML", "PG-MCML"});
  t.row({"current @ 5 ns (idle)", util::Table::eng(w.mcml.value_at(5e-9), "A"),
         util::Table::eng(w.pgmcml.value_at(5e-9), "A")});
  t.row({"current @ 14.8 ns (active)",
         util::Table::eng(w.mcml.value_at(14.8e-9), "A"),
         util::Table::eng(w.pgmcml.value_at(14.8e-9), "A")});
  t.row({"window-average current", util::Table::eng(w.mcml.average(), "A"),
         util::Table::eng(w.pgmcml.average(), "A")});
  t.print();
  std::printf(
      "Idle-current ratio MCML / PG-MCML: %.0fx  (paper: flat ~30 mA vs "
      "negligible)\n\n",
      w.mcml.value_at(5e-9) / std::max(w.pgmcml.value_at(5e-9), 1e-12));

  // Power integrity of the wake edge: why Section 5 buffers the sleep
  // signal as a tree (staggered turn-on keeps the inrush and IR droop down).
  const double block_current = w.mcml.average(2e-9, 10e-9);
  util::Table pi("Wake-up inrush vs sleep-tree staggering");
  pi.header({"leaf groups", "stagger", "peak current", "IR droop",
             "droop/Vdd", "settle"});
  for (std::size_t groups : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    power::InrushOptions io;
    io.stagger_groups = groups;
    io.stagger_step = 150e-12;
    const power::InrushResult r = power::analyze_wake_inrush(
        power::default_kernels(), block_current, io);
    pi.row({std::to_string(groups),
            groups > 1 ? util::Table::eng(io.stagger_step, "s")
                       : std::string("-"),
            util::Table::eng(r.peak_current, "A"),
            util::Table::eng(r.peak_droop, "V"),
            util::Table::num(100.0 * r.droop_fraction, 1) + "%",
            util::Table::eng(r.settle_time, "s")});
  }
  pi.print();
  std::printf("\n");
}

void BM_ComposeFig5(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compose_fig5_waveforms());
  }
}
BENCHMARK(BM_ComposeFig5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  pgmcml::bench::Manifest manifest("fig5_waveform");
  print_fig5();
  manifest.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
