// Reproduces Fig. 6 (and the surrounding security evaluation of Section 6):
// CPA with the Hamming-weight-of-S-box-output model against the reduced AES
// (AddRoundKey + S-box) in all three logic styles.
//
// Expected outcome, as in the paper: every attack on CMOS succeeds; neither
// conventional MCML nor PG-MCML reveals the key -- the correct key's
// correlation curve stays buried among the wrong guesses.
//
// PGMCML_FIG6_TRACES can override the per-style trace budget (default 4000;
// the paper's full sweep is 65536).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "pgmcml/core/dpa_flow.hpp"
#include "pgmcml/sca/tvla.hpp"
#include "pgmcml/util/table.hpp"

namespace {

using namespace pgmcml;
using cells::CellLibrary;

std::size_t trace_budget() {
  if (const char* env = std::getenv("PGMCML_FIG6_TRACES")) {
    return static_cast<std::size_t>(std::atoll(env));
  }
  return 4000;
}

void print_fig6() {
  core::DpaFlowOptions opt;
  opt.num_traces = trace_budget();
  opt.samples = 600;
  opt.keep_time_curves = true;

  util::Table t("Fig. 6 / Section 6 -- CPA on the reduced AES");
  t.header({"Style", "traces", "key rank", "best guess", "true key",
            "peak corr (true)", "peak corr (best wrong)", "MTD"});

  for (const CellLibrary& lib :
       {CellLibrary::cmos90(), CellLibrary::mcml90(), CellLibrary::pgmcml90()}) {
    core::DpaFlowOptions style_opt = opt;
    style_opt.compute_mtd = lib.style() == cells::LogicStyle::kCmos;
    const core::DpaFlowResult r = core::run_dpa_flow(lib, style_opt);
    double best_wrong = 0.0;
    for (int k = 0; k < 256; ++k) {
      if (k != opt.key) {
        best_wrong = std::max(best_wrong, r.cpa.peak_correlation[k]);
      }
    }
    t.row({to_string(lib.style()), std::to_string(opt.num_traces),
           std::to_string(r.key_rank), std::to_string(r.cpa.best_guess),
           std::to_string(int(opt.key)),
           util::Table::num(r.cpa.peak_correlation[opt.key], 4),
           util::Table::num(best_wrong, 4),
           r.mtd > 0 ? std::to_string(r.mtd) : std::string("-")});

    // The Fig. 6 plot itself: correlation-vs-time of the true key against
    // the envelope of all wrong guesses, at a few time points.
    if (lib.style() == cells::LogicStyle::kPgMcml &&
        !r.cpa.correlation_vs_time.empty()) {
      std::printf(
          "\nFig. 6 detail (PG-MCML): correlation vs time, true key against "
          "the wrong-guess envelope\n");
      std::printf("  %-12s %-12s %-12s\n", "t [ps]", "corr(true)",
                  "max |corr(wrong)|");
      const std::size_t stride = r.cpa.correlation_vs_time.size() / 12;
      for (std::size_t s = 0; s < r.cpa.correlation_vs_time.size();
           s += stride) {
        double wrong = 0.0;
        for (int k = 0; k < 256; ++k) {
          if (k != opt.key) {
            wrong = std::max(wrong,
                             std::fabs(r.cpa.correlation_vs_time[s][k]));
          }
        }
        std::printf("  %-12.0f %-12.4f %-12.4f\n",
                    (0.4e-9 + s * opt.dt) * 1e12,
                    r.cpa.correlation_vs_time[s][opt.key], wrong);
      }
    }
  }
  std::printf("\n");
  t.print();
  std::printf(
      "\nReading: rank 0 = key disclosed (expected for CMOS only); a large "
      "rank with negative margin = the black curve of Fig. 6 is not "
      "distinguishable.\n\n");

  // Model-free leakage assessment (TVLA, fixed-vs-random Welch t-test) on
  // the same acquisition engine: |t| > 4.5 flags leakage.
  util::Table tv("TVLA fixed-vs-random t-test (methodological extension)");
  tv.header({"Style", "fixed/random traces", "max |t|", "verdict"});
  for (const CellLibrary& lib :
       {CellLibrary::cmos90(), CellLibrary::mcml90(), CellLibrary::pgmcml90()}) {
    core::DpaFlowOptions aopt;
    aopt.num_traces = std::min<std::size_t>(trace_budget() / 2, 1500);
    aopt.samples = 500;
    const sca::TraceSet random_ts = core::acquire_reduced_aes_traces(lib, aopt);
    core::DpaFlowOptions fopt = aopt;
    fopt.fixed_plaintext = 0x52;  // conventional TVLA fixed vector
    fopt.seed = aopt.seed + 1;    // independent noise draws
    const sca::TraceSet fixed_ts = core::acquire_reduced_aes_traces(lib, fopt);
    std::vector<std::vector<double>> fixed;
    std::vector<std::vector<double>> random;
    for (std::size_t i = 0; i < random_ts.num_traces(); ++i) {
      random.push_back(random_ts.trace(i));
    }
    for (std::size_t i = 0; i < fixed_ts.num_traces(); ++i) {
      fixed.push_back(fixed_ts.trace(i));
    }
    const sca::TvlaResult tr = sca::tvla_t_test(fixed, random);
    tv.row({to_string(lib.style()),
            std::to_string(tr.fixed_traces) + "/" +
                std::to_string(tr.random_traces),
            util::Table::num(tr.max_abs_t, 2),
            tr.leaks() ? "LEAKS" : "pass"});
  }
  tv.print();
  std::printf(
      "\nReading: TVLA is a *detection* test, not an attack -- it flags any "
      "statistical data dependence.\nThe MCML styles' steering transients "
      "are data-dependent in timing even though their amplitude\ncarries no "
      "exploitable HW correlation, so a sensitive-enough t-test flags them "
      "while CPA (above)\nstill cannot rank the key.  This mirrors published "
      "TVLA results on hiding countermeasures and\nrefines the paper's "
      "CPA-only security claim.\n\n");
}

void BM_CpaAttackOnly(benchmark::State& state) {
  core::DpaFlowOptions opt;
  opt.num_traces = 256;
  opt.samples = 300;
  const sca::TraceSet traces =
      core::acquire_reduced_aes_traces(CellLibrary::cmos90(), opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sca::cpa_attack(traces));
  }
}
BENCHMARK(BM_CpaAttackOnly)->Unit(benchmark::kMillisecond);

void BM_TraceAcquisition(benchmark::State& state) {
  core::DpaFlowOptions opt;
  opt.num_traces = 32;
  opt.samples = 300;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::acquire_reduced_aes_traces(CellLibrary::pgmcml90(), opt));
  }
}
BENCHMARK(BM_TraceAcquisition)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
