// Reproduces Fig. 6 (and the surrounding security evaluation of Section 6):
// CPA with the Hamming-weight-of-S-box-output model against the reduced AES
// (AddRoundKey + S-box) in all three logic styles.
//
// Expected outcome, as in the paper: every attack on CMOS succeeds; neither
// conventional MCML nor PG-MCML reveals the key -- the correct key's
// correlation curve stays buried among the wrong guesses.
//
// The whole evaluation streams: acquisition runs batch-by-batch through the
// accumulator engine with keep_traces off, so the campaign never
// materializes a trace matrix (the peak-RSS figure in the
// BENCH_fig6_cpa.json manifest is the receipt).  PGMCML_FIG6_TRACES can
// override the per-style trace budget (default 4000; the paper's full sweep
// is 65536).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_manifest.hpp"
#include "pgmcml/core/dpa_flow.hpp"
#include "pgmcml/sca/accumulator.hpp"
#include "pgmcml/sca/tvla.hpp"
#include "pgmcml/util/env.hpp"
#include "pgmcml/util/table.hpp"

namespace {

using namespace pgmcml;
using cells::CellLibrary;

std::size_t trace_budget() {
  return static_cast<std::size_t>(
      util::env_u64("PGMCML_FIG6_TRACES", 4, std::uint64_t{1} << 30)
          .value_or(4000));
}

double now_seconds() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}

/// Per-style measurements collected for the manifest.
struct StyleBench {
  std::string style;
  std::size_t traces = 0;
  double cpa_seconds = 0.0;      ///< streamed acquisition + attack
  int key_rank = -1;
  std::size_t mtd = 0;
  double tvla_max_t = 0.0;
  int mlpa_rank = -1;            ///< MLPA on the same dynamic acquisition
  int static_awake_rank = -1;    ///< static-power attack, powered window
  int static_asleep_rank = -1;   ///< static-power attack, gated-off window
  std::size_t static_awake_mtd = 0;
  std::size_t static_asleep_mtd = 0;
  std::string diagnostics_json;
  double traces_per_second() const {
    return cpa_seconds > 0.0 ? static_cast<double>(traces) / cpa_seconds : 0.0;
  }
};

void print_fig6(std::vector<StyleBench>& bench) {
  core::DpaFlowOptions opt;
  opt.num_traces = trace_budget();
  opt.samples = 600;
  opt.keep_time_curves = true;
  opt.keep_traces = false;  // bounded memory: one batch resident at a time

  util::Table t("Fig. 6 / Section 6 -- CPA on the reduced AES");
  t.header({"Style", "traces", "key rank", "best guess", "true key",
            "peak corr (true)", "peak corr (best wrong)", "MTD"});

  for (const CellLibrary& lib :
       {CellLibrary::cmos90(), CellLibrary::mcml90(), CellLibrary::pgmcml90()}) {
    core::DpaFlowOptions style_opt = opt;
    style_opt.compute_mtd = lib.style() == cells::LogicStyle::kCmos;
    style_opt.compute_mlpa = true;  // rides the same streamed acquisition
    const double t0 = now_seconds();
    const core::DpaFlowResult r = core::run_dpa_flow(lib, style_opt);
    StyleBench sb;
    sb.style = to_string(lib.style());
    sb.traces = opt.num_traces;
    sb.cpa_seconds = now_seconds() - t0;
    sb.key_rank = r.key_rank;
    sb.mtd = r.mtd;
    sb.mlpa_rank = r.mlpa.key_rank(opt.key);
    sb.diagnostics_json = r.diagnostics.to_json();
    bench.push_back(sb);

    double best_wrong = 0.0;
    for (int k = 0; k < 256; ++k) {
      if (k != opt.key) {
        best_wrong = std::max(best_wrong, r.cpa.peak_correlation[k]);
      }
    }
    t.row({to_string(lib.style()), std::to_string(opt.num_traces),
           std::to_string(r.key_rank), std::to_string(r.cpa.best_guess),
           std::to_string(int(opt.key)),
           util::Table::num(r.cpa.peak_correlation[opt.key], 4),
           util::Table::num(best_wrong, 4),
           r.mtd > 0 ? std::to_string(r.mtd) : std::string("-")});

    // The Fig. 6 plot itself: correlation-vs-time of the true key against
    // the envelope of all wrong guesses, at a few time points.
    if (lib.style() == cells::LogicStyle::kPgMcml &&
        !r.cpa.correlation_vs_time.empty()) {
      std::printf(
          "\nFig. 6 detail (PG-MCML): correlation vs time, true key against "
          "the wrong-guess envelope\n");
      std::printf("  %-12s %-12s %-12s\n", "t [ps]", "corr(true)",
                  "max |corr(wrong)|");
      const std::size_t stride = r.cpa.correlation_vs_time.size() / 12;
      for (std::size_t s = 0; s < r.cpa.correlation_vs_time.size();
           s += stride) {
        double wrong = 0.0;
        for (int k = 0; k < 256; ++k) {
          if (k != opt.key) {
            wrong = std::max(wrong,
                             std::fabs(r.cpa.correlation_vs_time[s][k]));
          }
        }
        std::printf("  %-12.0f %-12.4f %-12.4f\n",
                    (0.4e-9 + s * opt.dt) * 1e12,
                    r.cpa.correlation_vs_time[s][opt.key], wrong);
      }
    }
  }
  std::printf("\n");
  t.print();
  std::printf(
      "\nReading: rank 0 = key disclosed (expected for CMOS only); a large "
      "rank with negative margin = the black curve of Fig. 6 is not "
      "distinguishable.\n\n");

  // Model-free leakage assessment (TVLA, fixed-vs-random Welch t-test) on
  // the same acquisition engine: |t| > 4.5 flags leakage.  Both classes
  // stream straight into the Welford accumulator -- the fixed and random
  // campaigns never exist as trace matrices.
  util::Table tv("TVLA fixed-vs-random t-test (methodological extension)");
  tv.header({"Style", "fixed/random traces", "max |t|", "verdict"});
  for (std::size_t s = 0; s < bench.size(); ++s) {
    const CellLibrary lib = s == 0   ? CellLibrary::cmos90()
                            : s == 1 ? CellLibrary::mcml90()
                                     : CellLibrary::pgmcml90();
    core::DpaFlowOptions aopt;
    aopt.num_traces = std::min<std::size_t>(trace_budget() / 2, 1500);
    aopt.samples = 500;
    core::DpaFlowOptions fopt = aopt;
    fopt.fixed_plaintext = 0x52;  // conventional TVLA fixed vector
    fopt.seed = aopt.seed + 1;    // independent noise draws

    sca::TvlaAccumulator acc(aopt.samples);
    sca::TraceBatch batch;
    // The class label is which acquisition a trace came from, not its
    // plaintext: a random-class trace may coincidentally equal 0x52.
    auto random_src = core::make_acquisition_source(lib, aopt);
    while (random_src->next(batch)) {
      for (const auto& trace : batch.traces) acc.add(false, trace);
    }
    auto fixed_src = core::make_acquisition_source(lib, fopt);
    while (fixed_src->next(batch)) {
      for (const auto& trace : batch.traces) acc.add(true, trace);
    }

    const sca::TvlaResult tr = acc.snapshot();
    bench[s].tvla_max_t = tr.max_abs_t;
    tv.row({to_string(lib.style()),
            std::to_string(tr.fixed_traces) + "/" +
                std::to_string(tr.random_traces),
            util::Table::num(tr.max_abs_t, 2),
            tr.leaks() ? "LEAKS" : "pass"});
  }
  tv.print();
  std::printf(
      "\nReading: TVLA is a *detection* test, not an attack -- it flags any "
      "statistical data dependence.\nThe MCML styles' steering transients "
      "are data-dependent in timing even though their amplitude\ncarries no "
      "exploitable HW correlation, so a sensitive-enough t-test flags them "
      "while CPA (above)\nstill cannot rank the key.  This mirrors published "
      "TVLA results on hiding countermeasures and\nrefines the paper's "
      "CPA-only security claim.\n\n");

  // Static-power attack (quiescent-hold acquisition, both gating windows)
  // plus the MLPA verdicts collected on the dynamic acquisition above.
  util::Table ts(
      "Static-power and MLPA attacks (methodological extension)");
  ts.header({"Style", "holds", "awake rank", "awake MTD", "asleep rank",
             "asleep MTD", "MLPA rank", "verdict"});
  for (std::size_t s = 0; s < bench.size(); ++s) {
    const CellLibrary lib = s == 0   ? CellLibrary::cmos90()
                            : s == 1 ? CellLibrary::mcml90()
                                     : CellLibrary::pgmcml90();
    core::DpaFlowOptions sopt;
    sopt.num_traces = std::min<std::size_t>(trace_budget() / 2, 1500);
    sopt.samples = 200;
    sopt.acquisition = core::AcquisitionMode::kStatic;
    sopt.compute_static = true;
    sopt.compute_mtd = true;
    sopt.keep_traces = false;
    const core::DpaFlowResult sr = core::run_dpa_flow(lib, sopt);
    bench[s].static_awake_rank = sr.static_awake.key_rank(sopt.key);
    bench[s].static_asleep_rank = sr.static_asleep.key_rank(sopt.key);
    bench[s].static_awake_mtd = sr.static_awake_mtd;
    bench[s].static_asleep_mtd = sr.static_asleep_mtd;
    const auto mtd_str = [](std::size_t mtd) {
      return mtd > 0 ? std::to_string(mtd) : std::string("-");
    };
    const bool starved = lib.style() == cells::LogicStyle::kPgMcml &&
                         bench[s].static_asleep_rank != 0;
    ts.row({to_string(lib.style()), std::to_string(sopt.num_traces),
            std::to_string(bench[s].static_awake_rank),
            mtd_str(sr.static_awake_mtd),
            std::to_string(bench[s].static_asleep_rank),
            mtd_str(sr.static_asleep_mtd),
            std::to_string(bench[s].mlpa_rank),
            starved ? "asleep STARVED" : "DISCLOSES"});
  }
  ts.print();
  std::printf(
      "\nReading: static power is the channel dynamic hiding cannot touch -- "
      "CMOS leakage asymmetry and\nMCML leg imbalance are state-dependent "
      "whenever the cells hold power, so CMOS and MCML fall to\naveraged "
      "quiescent measurements that never see a switching event.  PG-MCML "
      "leaks the same way\nwhile awake; gating off leaves a state-independent "
      "sleep floor and the attack starves.  MLPA\n(multi-linear DPA over all "
      "8 hypothesis bits) sharpens classic DPA but stays an "
      "amplitude-domain\nattack: it inherits each style's dynamic verdict, "
      "not the static one.\n\n");
}

void write_bench_json(pgmcml::bench::Manifest& manifest,
                      const std::vector<StyleBench>& bench) {
  obs::json::Array styles;
  for (const StyleBench& s : bench) {
    // Timings are machine-dependent (CI ignores them); the attack outcomes
    // (key rank per style, TVLA verdicts) are exact.
    manifest.metric("cpa." + s.style + ".seconds", s.cpa_seconds,
                    pgmcml::bench::Better::kLower);
    manifest.metric("cpa." + s.style + ".traces_per_s", s.traces_per_second(),
                    pgmcml::bench::Better::kHigher);
    manifest.metric("cpa." + s.style + ".key_rank",
                    static_cast<double>(s.key_rank),
                    pgmcml::bench::Better::kNone);
    manifest.metric("tvla." + s.style + ".max_t", s.tvla_max_t,
                    pgmcml::bench::Better::kNone);
    manifest.metric("mlpa." + s.style + ".key_rank",
                    static_cast<double>(s.mlpa_rank),
                    pgmcml::bench::Better::kNone);
    manifest.metric("static." + s.style + ".awake.key_rank",
                    static_cast<double>(s.static_awake_rank),
                    pgmcml::bench::Better::kNone);
    manifest.metric("static." + s.style + ".asleep.key_rank",
                    static_cast<double>(s.static_asleep_rank),
                    pgmcml::bench::Better::kNone);
    obs::json::Object row;
    row.emplace_back("style", s.style);
    row.emplace_back("traces", static_cast<std::uint64_t>(s.traces));
    row.emplace_back("seconds", s.cpa_seconds);
    row.emplace_back("traces_per_s", s.traces_per_second());
    row.emplace_back("key_rank", s.key_rank);
    row.emplace_back("mtd", static_cast<std::uint64_t>(s.mtd));
    row.emplace_back("tvla_max_t", s.tvla_max_t);
    row.emplace_back("mlpa_rank", s.mlpa_rank);
    row.emplace_back("static_awake_rank", s.static_awake_rank);
    row.emplace_back("static_asleep_rank", s.static_asleep_rank);
    row.emplace_back("static_awake_mtd",
                     static_cast<std::uint64_t>(s.static_awake_mtd));
    row.emplace_back("static_asleep_mtd",
                     static_cast<std::uint64_t>(s.static_asleep_mtd));
    row.emplace_back("diagnostics",
                     obs::json::Value::parse(s.diagnostics_json));
    styles.emplace_back(std::move(row));
  }
  manifest.section("styles", obs::json::Value(std::move(styles)));
  manifest.write();
  std::printf("\n");
}

void BM_CpaAttackOnly(benchmark::State& state) {
  core::DpaFlowOptions opt;
  opt.num_traces = 256;
  opt.samples = 300;
  const sca::TraceSet traces =
      core::acquire_reduced_aes_traces(CellLibrary::cmos90(), opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sca::cpa_attack(traces));
  }
}
BENCHMARK(BM_CpaAttackOnly)->Unit(benchmark::kMillisecond);

void BM_TraceAcquisition(benchmark::State& state) {
  core::DpaFlowOptions opt;
  opt.num_traces = 32;
  opt.samples = 300;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::acquire_reduced_aes_traces(CellLibrary::pgmcml90(), opt));
  }
}
BENCHMARK(BM_TraceAcquisition)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  pgmcml::bench::Manifest manifest("fig6_cpa");
  std::vector<StyleBench> bench;
  print_fig6(bench);
  write_bench_json(manifest, bench);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
