// Shared bench-manifest envelope: every benchmark in bench/ reports through
// one schema-versioned JSON document (BENCH_<name>.json) instead of its own
// ad-hoc writer.  The envelope carries the provenance a regression gate
// needs (git sha, build type, thread count), the run's resource footprint
// (wall/cpu seconds, peak RSS), the named metrics with their improvement
// direction, free-form sections for bench-specific detail, and a snapshot of
// the pgmcml::obs registry so solver-effort counters ride along for free.
//
// compare_manifests() is the gate itself: bench_compare (the CLI) and the
// obs test suite both call it, so the pass/fail rule is one function.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pgmcml/obs/json.hpp"

namespace pgmcml::bench {

/// Manifest schema version; bump on envelope shape changes.
inline constexpr int kManifestSchemaVersion = 1;

/// Which direction is an improvement for a metric.
enum class Better {
  kNone,    ///< informational; never gated
  kLower,   ///< e.g. seconds, retries, skips
  kHigher,  ///< e.g. traces per second, speedup
};

const char* to_string(Better b);

/// Peak resident-set size of this process in kB (VmHWM), 0 where
/// /proc/self/status is unavailable.
std::size_t peak_rss_kb();

/// Collects one benchmark run.  Construct at the top of main() (wall/cpu
/// clocks start there), record metrics and sections as they are produced,
/// then write() the envelope.
class Manifest {
 public:
  explicit Manifest(std::string bench_name);

  /// Records a named scalar.  Dots namespace metrics ("cpa.pgmcml.seconds").
  void metric(const std::string& name, double value,
              Better better = Better::kNone);
  /// Attaches a bench-specific JSON subtree under sections.<name>.
  void section(const std::string& name, obs::json::Value value);

  /// Builds the envelope: provenance + clocks + metrics + sections + the
  /// current global obs snapshot.
  obs::json::Value to_json() const;

  /// Writes BENCH_<name>.json to the working directory (or `path` when
  /// given).  Returns true on success; failure is reported on stderr.
  bool write(const std::string& path = "") const;

 private:
  std::string name_;
  double wall_start_ = 0.0;
  double cpu_start_ = 0.0;
  obs::json::Object metrics_;
  obs::json::Object sections_;
};

/// One per-metric comparison outcome.
struct CompareLine {
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  double rel_change = 0.0;  ///< (current - baseline) / |baseline|
  double threshold = 0.0;
  bool regression = false;
  std::string note;  ///< "ignored", "missing-in-current", ...
};

struct CompareOptions {
  /// Relative degradation tolerated before a gated metric fails.
  double default_threshold = 0.25;
  /// Per-metric overrides, matched by exact name.
  std::vector<std::pair<std::string, double>> thresholds;
  /// Glob patterns ('*' wildcards) of metric names to skip entirely --
  /// machine-dependent timings in CI, for example.
  std::vector<std::string> ignore;
};

struct CompareReport {
  std::vector<CompareLine> lines;
  std::vector<std::string> errors;  ///< schema/shape problems (exit 2)
  bool ok() const;
  std::size_t regressions() const;
  /// Human-readable table of every compared metric.
  std::string render() const;
};

/// Matches `name` against a '*'-wildcard pattern (no other metacharacters).
bool glob_match(const std::string& pattern, const std::string& name);

/// Compares two manifest documents metric-by-metric.  A gated metric (better
/// != none) regresses when it degrades by more than its threshold; a gated
/// metric missing from `current` is a regression; metrics only in `current`
/// are informational.  Schema-version or shape mismatches land in errors.
CompareReport compare_manifests(const obs::json::Value& baseline,
                                const obs::json::Value& current,
                                const CompareOptions& options = {});

}  // namespace pgmcml::bench
