// Distributed-campaign benchmark: throughput scaling of the forked-worker
// coordinator against the serial reference, plus a crash-recovery run with
// an injected worker SIGKILL.  Every distributed run is checked bitwise
// against the serial reference (CPA peak correlations, DPA differences,
// TVLA max |t|, key rank, MTD) -- the `campaign.*.bitwise_equal` metrics
// are the receipt, and they gate regressions; the timing metrics are
// machine-dependent and ignored by the CI compare.
//
// PGMCML_BENCH_SMOKE=1 shrinks the workload to a CI-sized run.  The full
// run defaults to a 100k-trace campaign; PGMCML_CAMPAIGN_BENCH_TRACES and
// PGMCML_CAMPAIGN_BENCH_SAMPLES override either mode.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_manifest.hpp"
#include "pgmcml/campaign/campaign.hpp"
#include "pgmcml/util/env.hpp"
#include "pgmcml/util/table.hpp"

namespace {

using namespace pgmcml;

double now_seconds() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}

bool smoke_mode() {
  const char* env = std::getenv("PGMCML_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// The attack statistics two equal campaigns must share bit for bit.
bool bitwise_equal(const campaign::CampaignResult& a,
                   const campaign::CampaignResult& b) {
  return std::memcmp(a.cpa.peak_correlation.data(),
                     b.cpa.peak_correlation.data(),
                     sizeof(a.cpa.peak_correlation)) == 0 &&
         std::memcmp(a.dpa.peak_difference.data(),
                     b.dpa.peak_difference.data(),
                     sizeof(a.dpa.peak_difference)) == 0 &&
         std::memcmp(&a.tvla.max_abs_t, &b.tvla.max_abs_t,
                     sizeof(a.tvla.max_abs_t)) == 0 &&
         a.key_rank == b.key_rank && a.mtd == b.mtd &&
         a.traces_accumulated == b.traces_accumulated;
}

struct RunMeasurement {
  std::string label;
  std::size_t workers = 0;
  double seconds = 0.0;
  bool equal = false;
  campaign::CampaignResult result;
  double traces_per_second(std::size_t traces) const {
    return seconds > 0.0 ? static_cast<double>(traces) / seconds : 0.0;
  }
};

}  // namespace

int main() {
  bench::Manifest manifest("campaign");
  const bool smoke = smoke_mode();

  campaign::CampaignOptions base;
  base.style = cells::LogicStyle::kCmos;  // disclosing style: MTD is live
  base.num_traces = static_cast<std::size_t>(
      util::env_u64("PGMCML_CAMPAIGN_BENCH_TRACES", 16, std::uint64_t{1} << 30)
          .value_or(smoke ? 768 : 100000));
  base.samples = static_cast<std::size_t>(
      util::env_u64("PGMCML_CAMPAIGN_BENCH_SAMPLES", 8, 1u << 20)
          .value_or(smoke ? 96 : 128));
  base.checkpoint_every = smoke ? 32 : 1024;
  base.batch_size = smoke ? 16 : 64;
  base.poll_interval_s = 0.002;
  base.backoff_base_s = 0.01;
  base.backoff_cap_s = 0.1;

  std::printf("campaign bench: %zu traces x %zu samples, %zu shards (%s)\n\n",
              base.num_traces, base.samples, base.shard_count(),
              smoke ? "smoke" : "full");

  const double t_serial0 = now_seconds();
  const campaign::CampaignResult serial = campaign::run_campaign_serial(base);
  const double serial_s = now_seconds() - t_serial0;

  util::Table table("Distributed campaign: throughput and recovery");
  table.header({"run", "workers", "seconds", "traces/s", "speedup",
                "restarts", "skipped", "bitwise==serial"});
  table.row({"serial", "-", util::Table::num(serial_s, 2),
             util::Table::num(base.num_traces / serial_s, 0), "1.00", "0", "0",
             "(reference)"});

  std::vector<RunMeasurement> runs;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    campaign::CampaignOptions o = base;
    o.num_workers = workers;
    o.spool_dir = "bench-campaign-spool/w" + std::to_string(workers);
    std::filesystem::remove_all(o.spool_dir);
    RunMeasurement m;
    m.label = "workers_" + std::to_string(workers);
    m.workers = workers;
    const double t0 = now_seconds();
    m.result = campaign::run_campaign(o);
    m.seconds = now_seconds() - t0;
    m.equal = bitwise_equal(m.result, serial);
    table.row({m.label, std::to_string(workers),
               util::Table::num(m.seconds, 2),
               util::Table::num(m.traces_per_second(base.num_traces), 0),
               util::Table::num(serial_s / m.seconds, 2),
               std::to_string(m.result.restarts),
               std::to_string(m.result.shards_skipped),
               m.equal ? "yes" : "NO"});
    runs.push_back(std::move(m));
  }

  // Crash-recovery run: 4 workers, one worker SIGKILLed right after its
  // first durable checkpoint -- the coordinator must restart it from that
  // checkpoint and still land bitwise on the serial result.
  {
    campaign::CampaignOptions o = base;
    o.num_workers = 4;
    o.spool_dir = "bench-campaign-spool/crash";
    std::filesystem::remove_all(o.spool_dir);
    o.post_checkpoint_hook = [](std::uint64_t shard, int restart,
                                std::uint64_t ordinal) {
      if (shard == 1 && restart == 0 && ordinal >= 1) raise(SIGKILL);
    };
    RunMeasurement m;
    m.label = "crash";
    m.workers = 4;
    const double t0 = now_seconds();
    m.result = campaign::run_campaign(o);
    m.seconds = now_seconds() - t0;
    m.equal = bitwise_equal(m.result, serial);
    table.row({"crash (shard 1)", "4", util::Table::num(m.seconds, 2),
               util::Table::num(m.traces_per_second(base.num_traces), 0),
               util::Table::num(serial_s / m.seconds, 2),
               std::to_string(m.result.restarts),
               std::to_string(m.result.shards_skipped),
               m.equal ? "yes" : "NO"});
    runs.push_back(std::move(m));
  }
  table.print();
  std::printf(
      "\nReading: every distributed row must be bitwise equal to the serial "
      "reference; the crash row additionally shows restarts > 0 (the "
      "injected SIGKILL) with no shards skipped.\n\n");

  manifest.metric("campaign.serial.seconds", serial_s, bench::Better::kLower);
  manifest.metric("campaign.serial.traces_per_s", base.num_traces / serial_s,
                  bench::Better::kHigher);
  obs::json::Array scaling;
  bool all_equal = true;
  for (const RunMeasurement& m : runs) {
    const std::string prefix = "campaign." + m.label;
    manifest.metric(prefix + ".seconds", m.seconds, bench::Better::kLower);
    manifest.metric(prefix + ".traces_per_s",
                    m.traces_per_second(base.num_traces),
                    bench::Better::kHigher);
    manifest.metric(prefix + ".bitwise_equal", m.equal ? 1.0 : 0.0,
                    bench::Better::kHigher);
    manifest.metric(prefix + ".restarts",
                    static_cast<double>(m.result.restarts),
                    bench::Better::kNone);
    manifest.metric(prefix + ".shards_skipped",
                    static_cast<double>(m.result.shards_skipped),
                    bench::Better::kNone);
    all_equal = all_equal && m.equal;

    obs::json::Object row;
    row.emplace_back("run", m.label);
    row.emplace_back("workers", static_cast<std::uint64_t>(m.workers));
    row.emplace_back("seconds", m.seconds);
    row.emplace_back("traces_per_s", m.traces_per_second(base.num_traces));
    row.emplace_back("speedup_vs_serial",
                     m.seconds > 0.0 ? serial_s / m.seconds : 0.0);
    row.emplace_back("bitwise_equal_serial", m.equal);
    row.emplace_back("workers_spawned", m.result.workers_spawned);
    row.emplace_back("restarts", m.result.restarts);
    row.emplace_back("heartbeat_timeouts", m.result.heartbeat_timeouts);
    row.emplace_back("shards_skipped", m.result.shards_skipped);
    row.emplace_back("key_rank", m.result.key_rank);
    row.emplace_back("mtd", static_cast<std::uint64_t>(m.result.mtd));
    scaling.emplace_back(std::move(row));
  }
  obs::json::Object setup;
  setup.emplace_back("traces", static_cast<std::uint64_t>(base.num_traces));
  setup.emplace_back("samples", static_cast<std::uint64_t>(base.samples));
  setup.emplace_back("shards",
                     static_cast<std::uint64_t>(base.shard_count()));
  setup.emplace_back("smoke", smoke);
  manifest.section("setup", obs::json::Value(std::move(setup)));
  manifest.section("scaling", obs::json::Value(std::move(scaling)));
  manifest.write();

  if (!all_equal) {
    std::fprintf(stderr,
                 "FAIL: a distributed run diverged from the serial "
                 "reference\n");
    return 1;
  }
  return 0;
}
