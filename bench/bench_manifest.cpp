#include "bench_manifest.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <utility>

#include "pgmcml/obs/obs.hpp"
#include "pgmcml/util/parallel.hpp"

#ifndef PGMCML_GIT_SHA
#define PGMCML_GIT_SHA "unknown"
#endif
#ifndef PGMCML_BUILD_TYPE
#define PGMCML_BUILD_TYPE "unknown"
#endif

namespace pgmcml::bench {

namespace {

double wall_seconds() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}

/// Process CPU seconds across all threads (std::clock is per-process CPU
/// time on POSIX).
double cpu_seconds() {
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

std::string git_sha() {
  std::string sha = PGMCML_GIT_SHA;
  if (sha.empty() || sha == "unknown") {
    if (const char* env = std::getenv("GITHUB_SHA")) sha = env;
  }
  return sha.empty() ? "unknown" : sha;
}

}  // namespace

const char* to_string(Better b) {
  switch (b) {
    case Better::kLower: return "lower";
    case Better::kHigher: return "higher";
    case Better::kNone: break;
  }
  return "none";
}

std::size_t peak_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %zu", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

Manifest::Manifest(std::string bench_name)
    : name_(std::move(bench_name)),
      wall_start_(wall_seconds()),
      cpu_start_(cpu_seconds()) {}

void Manifest::metric(const std::string& name, double value, Better better) {
  obs::json::Object m;
  m.emplace_back("value", value);
  m.emplace_back("better", to_string(better));
  for (auto& [key, existing] : metrics_) {
    if (key == name) {
      existing = obs::json::Value(std::move(m));
      return;
    }
  }
  metrics_.emplace_back(name, obs::json::Value(std::move(m)));
}

void Manifest::section(const std::string& name, obs::json::Value value) {
  for (auto& [key, existing] : sections_) {
    if (key == name) {
      existing = std::move(value);
      return;
    }
  }
  sections_.emplace_back(name, std::move(value));
}

obs::json::Value Manifest::to_json() const {
  const obs::Snapshot snap = obs::Registry::global().snapshot();

  // Result-cache effectiveness rides along automatically whenever the run
  // touched the cache, so bench_compare can watch hit rates without each
  // bench opting in.  Purely informational: hit rates are workload-shaped,
  // not a regression gate.
  obs::json::Object metrics = metrics_;
  const std::uint64_t hits = snap.counter("cache.hit");
  const std::uint64_t misses = snap.counter("cache.miss");
  if (hits + misses > 0) {
    const auto add = [&metrics](const std::string& name, double value) {
      obs::json::Object m;
      m.emplace_back("value", value);
      m.emplace_back("better", to_string(Better::kNone));
      metrics.emplace_back(name, obs::json::Value(std::move(m)));
    };
    add("cache.hits", static_cast<double>(hits));
    add("cache.misses", static_cast<double>(misses));
    add("cache.hit_rate",
        static_cast<double>(hits) / static_cast<double>(hits + misses));
  }

  obs::json::Object doc;
  doc.emplace_back("schema_version", kManifestSchemaVersion);
  doc.emplace_back("bench", name_);
  doc.emplace_back("git_sha", git_sha());
  doc.emplace_back("build_type", std::string(PGMCML_BUILD_TYPE));
  doc.emplace_back("threads",
                   static_cast<std::uint64_t>(util::parallel_threads()));
  doc.emplace_back("wall_s", wall_seconds() - wall_start_);
  doc.emplace_back("cpu_s", cpu_seconds() - cpu_start_);
  doc.emplace_back("peak_rss_kb", static_cast<std::uint64_t>(peak_rss_kb()));
  doc.emplace_back("metrics", obs::json::Value(std::move(metrics)));
  doc.emplace_back("sections", obs::json::Value(sections_));
  doc.emplace_back("obs", snap.to_json());
  return obs::json::Value(std::move(doc));
}

bool Manifest::write(const std::string& path) const {
  const std::string out_path = path.empty() ? "BENCH_" + name_ + ".json" : path;
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_manifest: cannot open %s for writing\n",
                 out_path.c_str());
    return false;
  }
  const std::string text = to_json().dump(2);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (ok) std::printf("Wrote %s\n", out_path.c_str());
  return ok;
}

bool CompareReport::ok() const { return errors.empty() && regressions() == 0; }

std::size_t CompareReport::regressions() const {
  std::size_t n = 0;
  for (const CompareLine& l : lines) n += l.regression ? 1 : 0;
  return n;
}

std::string CompareReport::render() const {
  std::string out;
  char buf[256];
  for (const std::string& e : errors) {
    out += "ERROR: " + e + "\n";
  }
  for (const CompareLine& l : lines) {
    const char* tag = l.regression ? "REGRESSION" : "ok";
    if (!l.note.empty()) tag = l.note.c_str();
    std::snprintf(buf, sizeof buf, "  %-44s %14.6g -> %14.6g  %+8.2f%%  %s\n",
                  l.metric.c_str(), l.baseline, l.current,
                  l.rel_change * 100.0, tag);
    out += buf;
  }
  return out;
}

bool glob_match(const std::string& pattern, const std::string& name) {
  // Iterative '*' matcher with single-star backtracking.
  std::size_t p = 0, n = 0;
  std::size_t star = std::string::npos, mark = 0;
  while (n < name.size()) {
    if (p < pattern.size() && (pattern[p] == name[n])) {
      ++p;
      ++n;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = n;
    } else if (star != std::string::npos) {
      p = star + 1;
      n = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

namespace {

struct MetricEntry {
  std::string name;
  double value = 0.0;
  Better better = Better::kNone;
};

/// Extracts the metrics table; shape problems become errors.
std::vector<MetricEntry> extract_metrics(const obs::json::Value& doc,
                                         const char* which,
                                         std::vector<std::string>& errors) {
  std::vector<MetricEntry> out;
  const obs::json::Value* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    errors.push_back(std::string(which) + ": missing metrics object");
    return out;
  }
  for (const auto& [name, v] : metrics->as_object()) {
    MetricEntry e;
    e.name = name;
    if (v.is_number()) {
      e.value = v.as_number();
    } else if (v.is_object()) {
      e.value = v.number_or("value", 0.0);
      const std::string dir = v.string_or("better", "none");
      if (dir == "lower") {
        e.better = Better::kLower;
      } else if (dir == "higher") {
        e.better = Better::kHigher;
      }
    } else {
      errors.push_back(std::string(which) + ": metric '" + name +
                       "' is neither a number nor an object");
      continue;
    }
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace

CompareReport compare_manifests(const obs::json::Value& baseline,
                                const obs::json::Value& current,
                                const CompareOptions& options) {
  CompareReport report;

  const double base_ver = baseline.number_or("schema_version", -1.0);
  const double cur_ver = current.number_or("schema_version", -1.0);
  if (base_ver != kManifestSchemaVersion) {
    report.errors.push_back("baseline: unsupported schema_version " +
                            std::to_string(base_ver));
  }
  if (cur_ver != kManifestSchemaVersion) {
    report.errors.push_back("current: unsupported schema_version " +
                            std::to_string(cur_ver));
  }
  if (!report.errors.empty()) return report;

  const std::vector<MetricEntry> base =
      extract_metrics(baseline, "baseline", report.errors);
  const std::vector<MetricEntry> cur =
      extract_metrics(current, "current", report.errors);
  if (!report.errors.empty()) return report;

  const auto ignored = [&](const std::string& name) {
    for (const std::string& pat : options.ignore) {
      if (glob_match(pat, name)) return true;
    }
    return false;
  };
  const auto threshold_for = [&](const std::string& name) {
    for (const auto& [pat, thr] : options.thresholds) {
      if (pat == name || glob_match(pat, name)) return thr;
    }
    return options.default_threshold;
  };
  const auto find_current = [&](const std::string& name) -> const MetricEntry* {
    for (const MetricEntry& e : cur) {
      if (e.name == name) return &e;
    }
    return nullptr;
  };

  for (const MetricEntry& b : base) {
    CompareLine line;
    line.metric = b.name;
    line.baseline = b.value;
    line.threshold = threshold_for(b.name);
    if (ignored(b.name)) {
      line.note = "ignored";
      report.lines.push_back(std::move(line));
      continue;
    }
    const MetricEntry* c = find_current(b.name);
    if (c == nullptr) {
      line.regression = b.better != Better::kNone;
      line.note = "missing-in-current";
      report.lines.push_back(std::move(line));
      continue;
    }
    line.current = c->value;
    const double denom = std::fabs(b.value);
    line.rel_change =
        denom > 0.0 ? (c->value - b.value) / denom
                    : (c->value == 0.0 ? 0.0
                                       : std::copysign(HUGE_VAL, c->value));
    switch (b.better) {
      case Better::kLower:
        line.regression = line.rel_change > line.threshold;
        break;
      case Better::kHigher:
        line.regression = line.rel_change < -line.threshold;
        break;
      case Better::kNone:
        line.note = "informational";
        break;
    }
    report.lines.push_back(std::move(line));
  }

  for (const MetricEntry& c : cur) {
    bool in_base = false;
    for (const MetricEntry& b : base) {
      if (b.name == c.name) {
        in_base = true;
        break;
      }
    }
    if (in_base || ignored(c.name)) continue;
    CompareLine line;
    line.metric = c.name;
    line.current = c.value;
    line.note = "new-in-current";
    report.lines.push_back(std::move(line));
  }

  return report;
}

}  // namespace pgmcml::bench
