// Pipeline-level benchmark for the parallel-execution layer: times every
// parallelized stage of the evaluation flow once with 1 worker (the serial
// fallback) and once with the configured worker count (PGMCML_THREADS or
// hardware_concurrency), checks that both runs produce bitwise-identical
// results, and emits the measurements in the shared BENCH_pipeline.json
// manifest envelope.  PGMCML_BENCH_SMOKE=1 shrinks every workload to a
// CI-sized smoke run whose deterministic counters still gate regressions.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <span>
#include <memory>
#include <string>
#include <vector>

#include "bench_manifest.hpp"
#include "pgmcml/core/dpa_flow.hpp"
#include "pgmcml/mcml/builder.hpp"
#include "pgmcml/mcml/characterize.hpp"
#include "pgmcml/mcml/montecarlo.hpp"
#include "pgmcml/sca/accumulator.hpp"
#include "pgmcml/sca/trace_source.hpp"
#include "pgmcml/spice/engine.hpp"
#include "pgmcml/util/parallel.hpp"
#include "pgmcml/util/units.hpp"

namespace {

using namespace pgmcml;
using cells::CellLibrary;

double now_seconds() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}

struct StageResult {
  std::string name;
  double serial_s = 0.0;
  double parallel_s = 0.0;
  bool deterministic = false;
  double speedup() const {
    return parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
  }
};

/// Runs `stage` (which returns a checksum) once at 1 thread and once at the
/// configured count, verifying the checksums match bitwise.
StageResult time_stage(const std::string& name,
                       const std::function<double()>& stage) {
  StageResult r;
  r.name = name;

  util::set_parallel_threads(1);
  double t0 = now_seconds();
  const double serial_sum = stage();
  r.serial_s = now_seconds() - t0;

  util::set_parallel_threads(0);  // env / hardware default
  t0 = now_seconds();
  const double parallel_sum = stage();
  r.parallel_s = now_seconds() - t0;

  r.deterministic = serial_sum == parallel_sum;
  std::printf("  %-16s serial %8.3f s   parallel %8.3f s   x%.2f   %s\n",
              name.c_str(), r.serial_s, r.parallel_s, r.speedup(),
              r.deterministic ? "bitwise-identical" : "MISMATCH");
  return r;
}

double checksum(const sca::TraceSet& ts) {
  double sum = 0.0;
  for (std::size_t i = 0; i < ts.num_traces(); ++i) {
    sum += ts.plaintext(i);
    const auto& t = ts.trace(i);
    for (std::size_t j = 0; j < t.size(); ++j) sum += t[j];
  }
  return sum;
}

/// CI smoke mode: shrink the workloads so the whole bench finishes in
/// seconds while exercising the same code paths.
bool smoke_mode() {
  const char* env = std::getenv("PGMCML_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Swept circuit for the dc_sweep_batch stage: a CMOS inverter chain gives
/// each sweep point a real Newton solve (several nonlinear iterations over
/// a dozen unknowns), so the batch parallelism has work to amortize.
std::unique_ptr<spice::Circuit> make_swept_chain() {
  auto c = std::make_unique<spice::Circuit>();
  const spice::Technology tech;
  const auto vdd = c->node("vdd");
  c->add_vsource("VDD", vdd, c->gnd(), spice::SourceSpec::dc(tech.vdd()));
  const auto in = c->node("in");
  c->add_vsource("V1", in, c->gnd(), spice::SourceSpec::dc(0.0));
  spice::NodeId prev = in;
  for (int i = 0; i < 6; ++i) {
    const auto out = c->node("n" + std::to_string(i));
    c->add_mosfet("MP" + std::to_string(i), out, prev, vdd, vdd,
                  tech.pmos(spice::VtFlavor::kLowVt, 2e-6));
    c->add_mosfet("MN" + std::to_string(i), out, prev, c->gnd(), c->gnd(),
                  tech.nmos(spice::VtFlavor::kHighVt, 1e-6));
    c->add_capacitor("CL" + std::to_string(i), out, c->gnd(), 2e-15);
    prev = out;
  }
  return c;
}

/// The largest circuit the benches solve: a chain of power-gated MCML
/// buffers with full parasitics, driven by a differential pulse.  This is
/// the structure-reuse showcase -- one topology, thousands of Newton
/// solves over a transient window.
std::unique_ptr<spice::Circuit> make_mcml_chain(int stages) {
  using util::ns;
  using util::ps;
  auto c = std::make_unique<spice::Circuit>();
  mcml::McmlDesign d;  // PG-MCML: kSeriesSleep gating
  mcml::McmlRails rails;
  rails.vdd = c->node("vdd");
  rails.vp = c->node("vp");
  rails.vn = c->node("vn");
  rails.sleep_on = c->node("slp");
  rails.sleep_off = c->node("slpb");
  const double vdd = d.tech.vdd();
  c->add_vsource("VDD", rails.vdd, c->gnd(), spice::SourceSpec::dc(vdd));
  c->add_vsource("VP", rails.vp, c->gnd(), spice::SourceSpec::dc(d.vp));
  c->add_vsource("VN", rails.vn, c->gnd(), spice::SourceSpec::dc(d.vn));
  c->add_vsource("VSLP", rails.sleep_on, c->gnd(), spice::SourceSpec::dc(vdd));
  c->add_vsource("VSLPB", rails.sleep_off, c->gnd(),
                 spice::SourceSpec::dc(0.0));

  mcml::McmlCellBuilder b(*c, d, rails, "x.");
  mcml::DiffNet in = b.make_diff("in");
  c->add_vsource("VINP", in.p, c->gnd(),
                 spice::SourceSpec::pulse(d.v_low(), d.v_high(), 0.5 * ns,
                                          20 * ps, 20 * ps, 1 * ns, 2 * ns));
  c->add_vsource("VINN", in.n, c->gnd(),
                 spice::SourceSpec::pulse(d.v_high(), d.v_low(), 0.5 * ns,
                                          20 * ps, 20 * ps, 1 * ns, 2 * ns));
  mcml::DiffNet net = in;
  for (int i = 0; i < stages; ++i) net = b.buffer_stage(net);
  c->add_capacitor("CLP", net.p, c->gnd(), 5e-15);
  c->add_capacitor("CLN", net.n, c->gnd(), 5e-15);
  return c;
}

}  // namespace

int main() {
  bench::Manifest manifest("pipeline");
  const bool smoke = smoke_mode();
  const std::size_t nthreads = util::parallel_threads();
  std::printf("Pipeline benchmark: 1 thread vs %zu threads%s\n\n", nthreads,
              smoke ? " (smoke mode)" : "");

  // Fixed, modest workloads: large enough to expose the per-stage costs,
  // small enough to finish in minutes on one core.  Smoke mode shrinks them
  // to CI scale; the baselines under bench/baselines/ are smoke-mode runs.
  core::DpaFlowOptions acq_opt;
  acq_opt.num_traces = smoke ? 48 : 192;
  acq_opt.samples = smoke ? 200 : 400;

  // The CPA stage attacks a fixed trace set acquired once up front.
  const sca::TraceSet cpa_input =
      core::acquire_reduced_aes_traces(CellLibrary::cmos90(), acq_opt);

  std::vector<StageResult> stages;

  stages.push_back(time_stage("acquire", [&] {
    return checksum(
        core::acquire_reduced_aes_traces(CellLibrary::pgmcml90(), acq_opt));
  }));

  stages.push_back(time_stage("cpa", [&] {
    const sca::CpaResult r = sca::cpa_attack(cpa_input);
    double sum = 0.0;
    for (double v : r.peak_correlation) sum += v;
    return sum;
  }));

  stages.push_back(time_stage("cpa_shard", [&] {
    // Shard-parallel accumulation with fixed 64-trace shards merged in
    // ascending order: thread-count invariant by construction.
    const sca::CpaAccumulator acc = sca::cpa_accumulate_sharded(
        cpa_input, sca::LeakageModel::kHammingWeight, 64);
    const sca::CpaResult r = acc.snapshot();
    double sum = 0.0;
    for (double v : r.peak_correlation) sum += v;
    return sum;
  }));

  stages.push_back(time_stage("mtd", [&] {
    // Checkpointed single-pass MTD over the same traces: one accumulator
    // stream, snapshots at the grid points, no prefix reruns.
    sca::MtdTracker tracker(sca::LeakageModel::kHammingWeight,
                            cpa_input.samples_per_trace(), acq_opt.key,
                            cpa_input.num_traces());
    sca::TraceSetSource source(cpa_input);
    sca::TraceBatch batch;
    while (source.next(batch)) tracker.add_batch(batch);
    return static_cast<double>(tracker.finish());
  }));

  stages.push_back(time_stage("montecarlo", [&] {
    const mcml::MonteCarloResult r = mcml::monte_carlo_characterize(
        mcml::CellKind::kBuf, mcml::McmlDesign{}, smoke ? 3 : 6);
    return r.delay.mean() + r.swing.mean() + r.static_current.mean() +
           static_cast<double>(r.failures);
  }));

  stages.push_back(time_stage("bias_sweep", [&] {
    const auto pts =
        mcml::sweep_buffer_bias(mcml::McmlDesign{}, {35e-6, 50e-6, 75e-6});
    double sum = 0.0;
    for (const auto& pt : pts) sum += pt.delay_fo1 + pt.delay_fo4 + pt.vn;
    return sum;
  }));

  const int sweep_points = smoke ? 512 : 2048;
  stages.push_back(time_stage("dc_sweep_batch", [&] {
    std::vector<double> values;
    for (int i = 0; i <= sweep_points; ++i) {
      values.push_back(i * (0.7 / sweep_points));
    }
    const auto results = spice::dc_sweep_batch(make_swept_chain, "V1", values);
    double sum = 0.0;
    for (const auto& r : results) {
      for (double v : r.x) sum += v;
    }
    return sum;
  }));

  util::set_parallel_threads(0);

  // --- sparse-vs-dense solver comparison ------------------------------------
  // One single-threaded transient over the largest bench circuit, run on
  // both backends.  The sparse structure-reusing path must beat the dense
  // reference by a wide margin, and the two must agree on the answer.
  const int chain_stages = smoke ? 24 : 48;
  const double chain_window = (smoke ? 2.0 : 4.0) * util::ns;
  util::set_parallel_threads(1);
  double dense_s = 0.0, sparse_s = 0.0, sparse_solves = 0.0;
  double parity_diff = 0.0, fill_in = 0.0, unknowns = 0.0;
  spice::NewtonWorkspace chain_ws;
  std::vector<double> final_state[2];
  {
    auto c = make_mcml_chain(chain_stages);
    spice::TranOptions opt;
    opt.dt_max = 10 * util::ps;
    opt.backend = spice::SolverBackend::kDense;
    const double t0 = now_seconds();
    const spice::TranResult tr = spice::transient(*c, chain_window, opt);
    dense_s = now_seconds() - t0;
    if (!tr.ok) {
      std::fprintf(stderr, "dense chain transient failed: %s\n",
                   tr.error.c_str());
      return 1;
    }
    final_state[0] = tr.final_state;
    unknowns = static_cast<double>(tr.final_state.size());
  }
  {
    auto c = make_mcml_chain(chain_stages);
    spice::TranOptions opt;
    opt.dt_max = 10 * util::ps;
    opt.backend = spice::SolverBackend::kSparse;
    const double t0 = now_seconds();
    const spice::TranResult tr =
        spice::transient(*c, chain_window, opt, chain_ws);
    sparse_s = now_seconds() - t0;
    if (!tr.ok) {
      std::fprintf(stderr, "sparse chain transient failed: %s\n",
                   tr.error.c_str());
      return 1;
    }
    final_state[1] = tr.final_state;
    sparse_solves = static_cast<double>(tr.stats.lu_solves);
    fill_in = chain_ws.sparse.fill_in_ratio();
  }
  for (std::size_t i = 0; i < final_state[0].size(); ++i) {
    parity_diff =
        std::max(parity_diff, std::fabs(final_state[0][i] - final_state[1][i]));
  }

  // Refactor-vs-factorize micro-ratio on the chain's own matrix: the
  // workspace still holds the last assembled values, so the replay path is
  // timed against full pivoting on the real system.
  double refactor_ratio = 0.0;
  {
    const std::span<const double> vals(chain_ws.values.data(),
                                       chain_ws.sparse.pattern_nnz());
    const int reps = 200;
    double t0 = now_seconds();
    for (int i = 0; i < reps; ++i) chain_ws.sparse.refactor(vals);
    const double refactor_t = now_seconds() - t0;
    t0 = now_seconds();
    for (int i = 0; i < reps; ++i) chain_ws.sparse.factorize(vals);
    const double factor_t = now_seconds() - t0;
    refactor_ratio = factor_t > 0.0 ? refactor_t / factor_t : 0.0;
  }
  const double chain_speedup = sparse_s > 0.0 ? dense_s / sparse_s : 0.0;
  const double solves_per_sec = sparse_s > 0.0 ? sparse_solves / sparse_s : 0.0;
  std::printf(
      "\nSparse solver (PG-MCML chain, %d stages, %.0f unknowns):\n"
      "  dense %8.3f s   sparse %8.3f s   x%.2f   %.0f solves/s\n"
      "  fill-in %.3f   refactor/factorize time %.3f   max |dV| %.2e\n",
      chain_stages, unknowns, dense_s, sparse_s, chain_speedup, solves_per_sec,
      fill_in, refactor_ratio, parity_diff);

  util::set_parallel_threads(0);

  // One full flow run for the diagnostics block: acquisition health
  // (retries/skips and engine-effort totals) goes to the manifest alongside
  // the timings, so a degraded-but-passing run is visible to machines too.
  core::DpaFlowOptions diag_opt = acq_opt;
  diag_opt.num_traces = smoke ? 32 : 64;
  const core::DpaFlowResult diag_flow =
      core::run_dpa_flow(CellLibrary::pgmcml90(), diag_opt);
  std::printf("\nFlow diagnostics: %s\n",
              diag_flow.diagnostics.clean() ? "clean" : "incidents recorded");

  // Timings are machine-dependent (CI ignores "*.serial_s"/"*.parallel_s"/
  // "*.speedup"); determinism flags and acquisition health are exact and
  // gate regressions at any machine speed.
  obs::json::Array stage_rows;
  for (const StageResult& s : stages) {
    manifest.metric("stage." + s.name + ".serial_s", s.serial_s,
                    bench::Better::kLower);
    manifest.metric("stage." + s.name + ".parallel_s", s.parallel_s,
                    bench::Better::kLower);
    manifest.metric("stage." + s.name + ".speedup", s.speedup(),
                    bench::Better::kHigher);
    manifest.metric("stage." + s.name + ".deterministic",
                    s.deterministic ? 1.0 : 0.0, bench::Better::kHigher);
    obs::json::Object row;
    row.emplace_back("name", s.name);
    row.emplace_back("serial_s", s.serial_s);
    row.emplace_back("parallel_s", s.parallel_s);
    row.emplace_back("speedup", s.speedup());
    row.emplace_back("deterministic", s.deterministic);
    stage_rows.emplace_back(std::move(row));
  }
  // Sparse-solver block.  Timings and throughput are machine-dependent (CI
  // ignores "sparse.*_s", the speedup, solves_per_sec and the micro-ratio);
  // the unknown count, fill-in ratio and backend parity are exact.
  manifest.metric("sparse.transient_dense_s", dense_s, bench::Better::kLower);
  manifest.metric("sparse.transient_sparse_s", sparse_s, bench::Better::kLower);
  manifest.metric("sparse.transient_speedup", chain_speedup,
                  bench::Better::kHigher);
  manifest.metric("sparse.solves_per_sec", solves_per_sec,
                  bench::Better::kHigher);
  manifest.metric("sparse.refactor_vs_factor_ratio", refactor_ratio,
                  bench::Better::kLower);
  manifest.metric("sparse.fill_in_ratio", fill_in, bench::Better::kLower);
  manifest.metric("sparse.unknowns", unknowns, bench::Better::kNone);
  manifest.metric("sparse.parity", parity_diff < 5e-3 ? 1.0 : 0.0,
                  bench::Better::kHigher);
  manifest.metric("acquisition.retries",
                  static_cast<double>(diag_flow.diagnostics.retries),
                  bench::Better::kLower);
  manifest.metric("acquisition.skips",
                  static_cast<double>(diag_flow.diagnostics.skipped),
                  bench::Better::kLower);
  manifest.metric("flow.key_rank", static_cast<double>(diag_flow.key_rank),
                  bench::Better::kNone);
  manifest.section("stages", obs::json::Value(std::move(stage_rows)));
  manifest.section(
      "diagnostics",
      obs::json::Value::parse(diag_flow.diagnostics.to_json()));
  if (!manifest.write()) return 1;

  for (const StageResult& s : stages) {
    if (!s.deterministic) {
      std::fprintf(stderr, "stage %s: serial/parallel results differ\n",
                   s.name.c_str());
      return 1;
    }
  }
  return 0;
}
