// Pipeline-level benchmark for the parallel-execution layer: times every
// parallelized stage of the evaluation flow once with 1 worker (the serial
// fallback) and once with the configured worker count (PGMCML_THREADS or
// hardware_concurrency), checks that both runs produce bitwise-identical
// results, and emits the measurements in the shared BENCH_pipeline.json
// manifest envelope.  PGMCML_BENCH_SMOKE=1 shrinks every workload to a
// CI-sized smoke run whose deterministic counters still gate regressions.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_manifest.hpp"
#include "pgmcml/core/dpa_flow.hpp"
#include "pgmcml/mcml/characterize.hpp"
#include "pgmcml/mcml/montecarlo.hpp"
#include "pgmcml/sca/accumulator.hpp"
#include "pgmcml/sca/trace_source.hpp"
#include "pgmcml/spice/engine.hpp"
#include "pgmcml/util/parallel.hpp"

namespace {

using namespace pgmcml;
using cells::CellLibrary;

double now_seconds() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}

struct StageResult {
  std::string name;
  double serial_s = 0.0;
  double parallel_s = 0.0;
  bool deterministic = false;
  double speedup() const {
    return parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
  }
};

/// Runs `stage` (which returns a checksum) once at 1 thread and once at the
/// configured count, verifying the checksums match bitwise.
StageResult time_stage(const std::string& name,
                       const std::function<double()>& stage) {
  StageResult r;
  r.name = name;

  util::set_parallel_threads(1);
  double t0 = now_seconds();
  const double serial_sum = stage();
  r.serial_s = now_seconds() - t0;

  util::set_parallel_threads(0);  // env / hardware default
  t0 = now_seconds();
  const double parallel_sum = stage();
  r.parallel_s = now_seconds() - t0;

  r.deterministic = serial_sum == parallel_sum;
  std::printf("  %-16s serial %8.3f s   parallel %8.3f s   x%.2f   %s\n",
              name.c_str(), r.serial_s, r.parallel_s, r.speedup(),
              r.deterministic ? "bitwise-identical" : "MISMATCH");
  return r;
}

double checksum(const sca::TraceSet& ts) {
  double sum = 0.0;
  for (std::size_t i = 0; i < ts.num_traces(); ++i) {
    sum += ts.plaintext(i);
    const auto& t = ts.trace(i);
    for (std::size_t j = 0; j < t.size(); ++j) sum += t[j];
  }
  return sum;
}

/// CI smoke mode: shrink the workloads so the whole bench finishes in
/// seconds while exercising the same code paths.
bool smoke_mode() {
  const char* env = std::getenv("PGMCML_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::unique_ptr<spice::Circuit> make_divider() {
  auto c = std::make_unique<spice::Circuit>();
  const auto n1 = c->node("in");
  const auto n2 = c->node("mid");
  c->add_vsource("V1", n1, c->gnd(), spice::SourceSpec::dc(0.0));
  c->add_resistor("R1", n1, n2, 1e3);
  c->add_resistor("R2", n2, c->gnd(), 2e3);
  return c;
}

}  // namespace

int main() {
  bench::Manifest manifest("pipeline");
  const bool smoke = smoke_mode();
  const std::size_t nthreads = util::parallel_threads();
  std::printf("Pipeline benchmark: 1 thread vs %zu threads%s\n\n", nthreads,
              smoke ? " (smoke mode)" : "");

  // Fixed, modest workloads: large enough to expose the per-stage costs,
  // small enough to finish in minutes on one core.  Smoke mode shrinks them
  // to CI scale; the baselines under bench/baselines/ are smoke-mode runs.
  core::DpaFlowOptions acq_opt;
  acq_opt.num_traces = smoke ? 48 : 192;
  acq_opt.samples = smoke ? 200 : 400;

  // The CPA stage attacks a fixed trace set acquired once up front.
  const sca::TraceSet cpa_input =
      core::acquire_reduced_aes_traces(CellLibrary::cmos90(), acq_opt);

  std::vector<StageResult> stages;

  stages.push_back(time_stage("acquire", [&] {
    return checksum(
        core::acquire_reduced_aes_traces(CellLibrary::pgmcml90(), acq_opt));
  }));

  stages.push_back(time_stage("cpa", [&] {
    const sca::CpaResult r = sca::cpa_attack(cpa_input);
    double sum = 0.0;
    for (double v : r.peak_correlation) sum += v;
    return sum;
  }));

  stages.push_back(time_stage("cpa_shard", [&] {
    // Shard-parallel accumulation with fixed 64-trace shards merged in
    // ascending order: thread-count invariant by construction.
    const sca::CpaAccumulator acc = sca::cpa_accumulate_sharded(
        cpa_input, sca::LeakageModel::kHammingWeight, 64);
    const sca::CpaResult r = acc.snapshot();
    double sum = 0.0;
    for (double v : r.peak_correlation) sum += v;
    return sum;
  }));

  stages.push_back(time_stage("mtd", [&] {
    // Checkpointed single-pass MTD over the same traces: one accumulator
    // stream, snapshots at the grid points, no prefix reruns.
    sca::MtdTracker tracker(sca::LeakageModel::kHammingWeight,
                            cpa_input.samples_per_trace(), acq_opt.key,
                            cpa_input.num_traces());
    sca::TraceSetSource source(cpa_input);
    sca::TraceBatch batch;
    while (source.next(batch)) tracker.add_batch(batch);
    return static_cast<double>(tracker.finish());
  }));

  stages.push_back(time_stage("montecarlo", [&] {
    const mcml::MonteCarloResult r = mcml::monte_carlo_characterize(
        mcml::CellKind::kBuf, mcml::McmlDesign{}, smoke ? 3 : 6);
    return r.delay.mean() + r.swing.mean() + r.static_current.mean() +
           static_cast<double>(r.failures);
  }));

  stages.push_back(time_stage("bias_sweep", [&] {
    const auto pts =
        mcml::sweep_buffer_bias(mcml::McmlDesign{}, {35e-6, 50e-6, 75e-6});
    double sum = 0.0;
    for (const auto& pt : pts) sum += pt.delay_fo1 + pt.delay_fo4 + pt.vn;
    return sum;
  }));

  const int sweep_points = smoke ? 64 : 256;
  stages.push_back(time_stage("dc_sweep_batch", [&] {
    std::vector<double> values;
    for (int i = 0; i <= sweep_points; ++i) {
      values.push_back(i * (2.5 / sweep_points));
    }
    const auto results = spice::dc_sweep_batch(make_divider, "V1", values);
    double sum = 0.0;
    for (const auto& r : results) {
      for (double v : r.x) sum += v;
    }
    return sum;
  }));

  util::set_parallel_threads(0);

  // One full flow run for the diagnostics block: acquisition health
  // (retries/skips and engine-effort totals) goes to the manifest alongside
  // the timings, so a degraded-but-passing run is visible to machines too.
  core::DpaFlowOptions diag_opt = acq_opt;
  diag_opt.num_traces = smoke ? 32 : 64;
  const core::DpaFlowResult diag_flow =
      core::run_dpa_flow(CellLibrary::pgmcml90(), diag_opt);
  std::printf("\nFlow diagnostics: %s\n",
              diag_flow.diagnostics.clean() ? "clean" : "incidents recorded");

  // Timings are machine-dependent (CI ignores "*.serial_s"/"*.parallel_s"/
  // "*.speedup"); determinism flags and acquisition health are exact and
  // gate regressions at any machine speed.
  obs::json::Array stage_rows;
  for (const StageResult& s : stages) {
    manifest.metric("stage." + s.name + ".serial_s", s.serial_s,
                    bench::Better::kLower);
    manifest.metric("stage." + s.name + ".parallel_s", s.parallel_s,
                    bench::Better::kLower);
    manifest.metric("stage." + s.name + ".speedup", s.speedup(),
                    bench::Better::kHigher);
    manifest.metric("stage." + s.name + ".deterministic",
                    s.deterministic ? 1.0 : 0.0, bench::Better::kHigher);
    obs::json::Object row;
    row.emplace_back("name", s.name);
    row.emplace_back("serial_s", s.serial_s);
    row.emplace_back("parallel_s", s.parallel_s);
    row.emplace_back("speedup", s.speedup());
    row.emplace_back("deterministic", s.deterministic);
    stage_rows.emplace_back(std::move(row));
  }
  manifest.metric("acquisition.retries",
                  static_cast<double>(diag_flow.diagnostics.retries),
                  bench::Better::kLower);
  manifest.metric("acquisition.skips",
                  static_cast<double>(diag_flow.diagnostics.skipped),
                  bench::Better::kLower);
  manifest.metric("flow.key_rank", static_cast<double>(diag_flow.key_rank),
                  bench::Better::kNone);
  manifest.section("stages", obs::json::Value(std::move(stage_rows)));
  manifest.section(
      "diagnostics",
      obs::json::Value::parse(diag_flow.diagnostics.to_json()));
  if (!manifest.write()) return 1;

  for (const StageResult& s : stages) {
    if (!s.deterministic) {
      std::fprintf(stderr, "stage %s: serial/parallel results differ\n",
                   s.name.c_str());
      return 1;
    }
  }
  return 0;
}
