// Service benchmark: an in-process pgmcmld core serving characterization
// requests over a Unix-domain socket, measuring the cold-vs-warm request
// pair against the shared result cache and a concurrent client burst.
//
// The deterministic receipts gate regressions in CI; the timing metrics are
// machine-dependent and ignored by the compare:
//   * service.warm_hit_rate       -- warm request served from the cache
//   * service.warm_solve_free     -- 1.0 when the warm request performed
//                                    zero Newton iterations
//   * service.responses_bitwise_equal -- cold, warm, and every burst
//                                    response identical to the serial
//                                    run_experiment() report
//   * service.burst_ok_fraction   -- every burst request admitted and ok
//
// PGMCML_BENCH_SMOKE=1 shrinks the plan to four cells; the full run
// characterizes the whole library.  The cache honours PGMCML_CACHE_DIR when
// set (the CI job sets it); otherwise a fresh temporary directory keeps the
// run self-contained and genuinely cold.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_manifest.hpp"
#include "pgmcml/cache/cache.hpp"
#include "pgmcml/config/experiment.hpp"
#include "pgmcml/config/request.hpp"
#include "pgmcml/config/technology.hpp"
#include "pgmcml/service/client.hpp"
#include "pgmcml/service/server.hpp"
#include "pgmcml/util/table.hpp"

namespace {

using namespace pgmcml;
namespace json = obs::json;

double now_seconds() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}

bool smoke_mode() {
  const char* env = std::getenv("PGMCML_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string make_temp_dir() {
  char tmpl[] = "/tmp/pgmcml-bench-service-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    std::fprintf(stderr, "FAIL: mkdtemp failed\n");
    std::exit(1);
  }
  return dir;
}

/// The benchmark workload: the builtin 90 nm typical corner, the paper's
/// MCML operating point, characterize (smoke: four cells; full: the whole
/// library).
json::Value make_experiment(bool smoke) {
  json::Object variant;
  variant.emplace_back("pgmcml_schema", std::int64_t{1});
  variant.emplace_back("kind", "cell_variant");
  variant.emplace_back("name", "bench-service-variant");
  variant.emplace_back("style", "mcml");

  json::Object plan;
  plan.emplace_back("pgmcml_schema", std::int64_t{1});
  plan.emplace_back("kind", "plan");
  plan.emplace_back("name", "bench-service-plan");
  plan.emplace_back("task", "characterize");
  if (smoke) {
    json::Array cells;
    for (const char* cell : {"BUF", "XOR2", "AND2", "DLATCH"}) {
      cells.emplace_back(cell);
    }
    plan.emplace_back("cells", json::Value(std::move(cells)));
  }

  json::Object e;
  e.emplace_back("pgmcml_schema", std::int64_t{1});
  e.emplace_back("kind", "experiment");
  e.emplace_back("name", "bench-service");
  e.emplace_back("technology",
                 config::technology_to_json(spice::TechnologyParams::builtin90(
                     spice::Corner::kTypical)));
  e.emplace_back("design", json::Value(std::move(variant)));
  e.emplace_back("plan", json::Value(std::move(plan)));
  return json::Value(std::move(e));
}

}  // namespace

int main() {
  bench::Manifest manifest("service");
  const bool smoke = smoke_mode();

  const std::string dir = make_temp_dir();
  if (std::getenv("PGMCML_CACHE_DIR") == nullptr) {
    cache::CacheOptions cache_options;
    cache_options.enabled = true;
    cache_options.dir = dir + "/cache";
    cache::ResultCache::global().configure(cache_options);
  } else {
    cache::ResultCache::global();  // configure from the environment
  }

  service::ServerOptions options;
  options.socket_path = dir + "/pgmcmld.sock";
  options.workers = 4;
  options.queue_depth = 64;
  service::Server server(options);
  server.start();

  const json::Value experiment = make_experiment(smoke);
  std::printf("service bench: %s plan, socket %s\n\n",
              smoke ? "smoke (4 cells)" : "full library",
              options.socket_path.c_str());

  // Cold/warm pair on one connection: the second request must be served
  // entirely from the result cache the first one populated.
  service::Client client = service::Client::connect_unix(options.socket_path);
  double t0 = now_seconds();
  const config::Response cold = config::response_from_json(
      client.call(service::make_run_request("cold", experiment)));
  const double cold_s = now_seconds() - t0;
  t0 = now_seconds();
  const config::Response warm = config::response_from_json(
      client.call(service::make_run_request("warm", experiment)));
  const double warm_s = now_seconds() - t0;
  if (!cold.ok() || !warm.ok()) {
    std::fprintf(stderr, "FAIL: cold/warm request failed: %s / %s\n",
                 cold.error.c_str(), warm.error.c_str());
    return 1;
  }

  // Concurrent burst against the warm tier: every request should be
  // admitted (queue_depth 64 >> 16) and answered identically.
  constexpr int kBurst = 16;
  constexpr int kClients = 4;
  std::vector<config::Response> burst(kBurst);
  t0 = now_seconds();
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      service::Client cl = service::Client::connect_unix(options.socket_path);
      for (int i = c; i < kBurst; i += kClients) {
        std::string id = "b";
        id += std::to_string(i);
        burst[i] = config::response_from_json(
            cl.call(service::make_run_request(id, experiment)));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double burst_s = now_seconds() - t0;

  // The serial reference runs last so the daemon's first request was
  // genuinely cold; cold-vs-warm bitwise equivalence of the cached flows
  // makes the reference bytes independent of that ordering.
  const config::Experiment parsed =
      config::experiment_from_json(experiment, "bench-service", ".");
  const std::string reference = config::run_experiment(parsed).dump(2);

  int burst_ok = 0;
  bool bitwise = cold.report.dump(2) == reference &&
                 warm.report.dump(2) == reference;
  for (const config::Response& r : burst) {
    if (r.ok()) ++burst_ok;
    bitwise = bitwise && r.ok() && r.report.dump(2) == reference;
  }
  const bool solve_free = warm.stats.newton_iterations == 0;

  server.drain();
  server.wait();

  util::Table table("Service: cold/warm pair and burst");
  table.header({"request", "seconds", "cache hits", "misses", "newton",
                "bitwise==serial"});
  table.row({"cold", util::Table::num(cold_s, 4),
             std::to_string(cold.stats.cache_hits),
             std::to_string(cold.stats.cache_misses),
             std::to_string(cold.stats.newton_iterations),
             cold.report.dump(2) == reference ? "yes" : "NO"});
  table.row({"warm", util::Table::num(warm_s, 4),
             std::to_string(warm.stats.cache_hits),
             std::to_string(warm.stats.cache_misses),
             std::to_string(warm.stats.newton_iterations),
             warm.report.dump(2) == reference ? "yes" : "NO"});
  table.row({"burst x" + std::to_string(kBurst),
             util::Table::num(burst_s, 4), "-", "-", "-",
             burst_ok == kBurst && bitwise ? "yes" : "NO"});
  table.print();
  std::printf(
      "\nReading: the warm request must hit the cache for every cell "
      "(hit rate %.2f) with zero Newton iterations, and every response "
      "must equal the serial runner bit for bit.\n\n",
      warm.stats.cache_hit_rate());

  manifest.metric("service.cold_request_s", cold_s, bench::Better::kNone);
  manifest.metric("service.warm_request_s", warm_s, bench::Better::kLower);
  manifest.metric("service.warm_speedup",
                  warm_s > 0.0 ? cold_s / warm_s : 0.0,
                  bench::Better::kHigher);
  manifest.metric("service.requests_per_sec",
                  burst_s > 0.0 ? kBurst / burst_s : 0.0,
                  bench::Better::kHigher);
  manifest.metric("service.warm_hit_rate", warm.stats.cache_hit_rate(),
                  bench::Better::kHigher);
  manifest.metric("service.warm_solve_free", solve_free ? 1.0 : 0.0,
                  bench::Better::kHigher);
  manifest.metric("service.responses_bitwise_equal", bitwise ? 1.0 : 0.0,
                  bench::Better::kHigher);
  manifest.metric("service.burst_ok_fraction",
                  static_cast<double>(burst_ok) / kBurst,
                  bench::Better::kHigher);

  obs::json::Object setup;
  setup.emplace_back("smoke", smoke);
  setup.emplace_back("workers", static_cast<std::uint64_t>(options.workers));
  setup.emplace_back("queue_depth",
                     static_cast<std::uint64_t>(options.queue_depth));
  setup.emplace_back("burst", static_cast<std::uint64_t>(kBurst));
  setup.emplace_back("clients", static_cast<std::uint64_t>(kClients));
  setup.emplace_back("digest", cold.digest);
  manifest.section("setup", obs::json::Value(std::move(setup)));
  manifest.write();

  if (!bitwise || !solve_free || warm.stats.cache_hit_rate() <= 0.9 ||
      burst_ok != kBurst) {
    std::fprintf(stderr,
                 "FAIL: warm/burst serving contract violated "
                 "(bitwise=%d solve_free=%d hit_rate=%.3f burst_ok=%d)\n",
                 bitwise ? 1 : 0, solve_free ? 1 : 0,
                 warm.stats.cache_hit_rate(), burst_ok);
    return 1;
  }
  return 0;
}
