// Extension experiment: scale the paper's protection from the S-box ISE to
// a full AES-128 coprocessor (iterative, one round per cycle) and cost it in
// all three styles -- cells, area, wire-aware timing (fat-wire placement),
// and average power under the Table 3 duty scenario.  Shows why the paper's
// ISE partitioning is the sweet spot: the full MCML core's static power is
// proportionally larger, and power gating matters even more.
#include <benchmark/benchmark.h>

#include "bench_manifest.hpp"

#include <cstdio>

#include <cstdlib>

#include "pgmcml/core/aes_core.hpp"
#include "pgmcml/core/sbox_unit.hpp"
#include "pgmcml/netlist/place.hpp"
#include "pgmcml/power/kernels.hpp"
#include "pgmcml/power/tracer.hpp"
#include "pgmcml/synth/sleep_tree.hpp"
#include "pgmcml/util/table.hpp"
#include "pgmcml/util/units.hpp"

namespace {

using namespace pgmcml;
using cells::CellLibrary;

void print_aes_core() {
  // Functional sanity printed up front.
  const synth::Module core = core::build_aes_core_module();
  aes::Key key{};
  aes::Block pt{};
  for (int i = 0; i < 16; ++i) {
    key[i] = static_cast<std::uint8_t>(i);
    pt[i] = static_cast<std::uint8_t>(i * 0x11);
  }
  const bool match = core::run_aes_core(core, pt, key) == aes::encrypt(pt, key);
  std::printf("AES-128 core functional check vs FIPS-197: %s (IR: %zu nodes)\n\n",
              match ? "PASS" : "FAIL", core.num_nodes());

  util::Table t("Full AES-128 coprocessor (1 round/cycle) per style");
  t.header({"", "CMOS", "MCML", "PG-MCML"});
  struct Row {
    std::size_t cells;
    double area;
    double cp;
    double routed_cp;
    double active_power;
    double avg_power;  // at 0.01 % crypto duty
  };
  std::vector<Row> rows;
  for (const CellLibrary& lib :
       {CellLibrary::cmos90(), CellLibrary::mcml90(), CellLibrary::pgmcml90()}) {
    const synth::MapResult mapped = core::map_aes_core(lib);
    const auto stats = mapped.design.stats(lib);
    const auto placed = netlist::place_and_route(mapped.design, lib);
    power::TraceOptions topt;
    topt.include_noise = false;
    const power::PowerTracer tracer(mapped.design, lib,
                                    power::default_kernels(), topt);
    Row r;
    r.cells = stats.cells;
    r.area = stats.area;
    r.cp = stats.critical_path;
    r.routed_cp = placed.routed_critical_path;
    const double duty = 1e-4;
    switch (lib.style()) {
      case cells::LogicStyle::kCmos: {
        // Dynamic estimate: ~15 % of nets toggle per cycle at 400 MHz when
        // active.
        double e_cycle = 0.0;
        for (const auto& inst : mapped.design.instances()) {
          e_cycle += 0.15 * lib.cell(inst.kind).switch_energy;
        }
        r.active_power = tracer.leakage_power() + e_cycle * 400e6;
        r.avg_power = tracer.leakage_power() + e_cycle * 400e6 * duty;
        break;
      }
      case cells::LogicStyle::kMcml:
        r.active_power = lib.vdd() * tracer.awake_current();
        r.avg_power = r.active_power;
        break;
      case cells::LogicStyle::kPgMcml: {
        const auto tree = synth::insert_sleep_tree(mapped.design, lib);
        r.cells += tree.buffers;
        r.area += tree.buffer_area;
        r.active_power = lib.vdd() * tracer.awake_current();
        r.avg_power = r.active_power * duty +
                      lib.vdd() * tracer.sleep_current() * (1.0 - duty);
        break;
      }
    }
    rows.push_back(r);
  }
  auto row = [&](const char* label, auto f) {
    t.row({label, f(rows[0]), f(rows[1]), f(rows[2])});
  };
  row("Cells", [](const Row& r) { return std::to_string(r.cells); });
  row("Area [um^2]",
      [](const Row& r) { return util::Table::num(r.area / util::um2, 0); });
  row("Critical path (cells)",
      [](const Row& r) { return util::Table::eng(r.cp, "s"); });
  row("Critical path (routed, fat wires)",
      [](const Row& r) { return util::Table::eng(r.routed_cp, "s"); });
  row("Active power",
      [](const Row& r) { return util::Table::eng(r.active_power, "W"); });
  row("Avg power @ 0.01% duty",
      [](const Row& r) { return util::Table::eng(r.avg_power, "W"); });
  t.print();
  // Compare against the ISE-scale MCML unit for the scaling argument.
  {
    const CellLibrary mcml_lib = CellLibrary::mcml90();
    const auto ise = core::map_sbox_ise(mcml_lib);
    power::TraceOptions topt;
    topt.include_noise = false;
    const power::PowerTracer ise_tracer(ise.design, mcml_lib,
                                        power::default_kernels(), topt);
    const double ise_power = mcml_lib.vdd() * ise_tracer.awake_current();
    std::printf(
        "\nScaling observation: the full MCML core burns %.1fx the S-box "
        "ISE's static power, so power\ngating is even more decisive at "
        "coprocessor scale (MCML/PG ratio %.0fx at 0.01%% duty).\n\n",
        rows[1].active_power / ise_power,
        rows[1].avg_power / rows[2].avg_power);
  }
}

void print_full_core_cpa() {
  std::size_t budget = 3000;
  if (const char* env = std::getenv("PGMCML_CORE_CPA_TRACES")) {
    budget = static_cast<std::size_t>(std::atoll(env));
  }
  util::Table t("First-round CPA against the FULL core (chosen plaintext)");
  t.header({"Style", "traces", "key rank", "margin"});
  for (const CellLibrary& lib :
       {CellLibrary::cmos90(), CellLibrary::pgmcml90()}) {
    const core::FullCoreCpaResult r = core::run_full_core_cpa(lib, budget);
    t.row({to_string(lib.style()), std::to_string(budget),
           std::to_string(r.key_rank), util::Table::num(r.margin, 4)});
  }
  t.print();
  std::printf(
      "\nReading: against the full core, the diffusion layers add "
      "algorithmic noise, so first-round CPA\nonly pushes the CMOS key into "
      "the top ranks (rank <= ~3) at these trace budgets instead of\n"
      "disclosing it outright -- 10-100x more traces and point-of-interest "
      "selection are typical for\nfull cores.  This is precisely why the "
      "community (and the paper, Section 6) evaluates logic\nstyles on the "
      "reduced AddRoundKey+S-box target, where the same engine gives "
      "MTD ~10^3 for CMOS.\nPG-MCML stays undistinguishable in both "
      "settings.\n\n");
}

void BM_BuildAesCore(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_aes_core_module());
  }
}
BENCHMARK(BM_BuildAesCore)->Unit(benchmark::kMillisecond);

void BM_RunAesCoreBlock(benchmark::State& state) {
  const synth::Module core = core::build_aes_core_module();
  aes::Key key{};
  aes::Block pt{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_aes_core(core, pt, key));
  }
}
BENCHMARK(BM_RunAesCoreBlock)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  pgmcml::bench::Manifest manifest("ext_aes_core");
  print_aes_core();
  print_full_core_cpa();
  manifest.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
