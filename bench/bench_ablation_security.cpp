// Security-margin ablation: how robust is the MCML/PG-MCML DPA resistance
// to the physical parameters behind it?  Sweeps
//   * the per-instance leg-imbalance residual (process mismatch),
//   * the supply-noise floor,
//   * the trace budget,
// and reports the CPA key rank -- mapping the boundary where current-mode
// logic *would* start to leak.  (The paper evaluates one point of this
// space; the sweep is this reproduction's extension.)
#include <benchmark/benchmark.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "bench_manifest.hpp"
#include "pgmcml/core/dpa_flow.hpp"
#include "pgmcml/core/sbox_unit.hpp"
#include "pgmcml/netlist/logicsim.hpp"
#include "pgmcml/power/kernels.hpp"
#include "pgmcml/sca/accumulator.hpp"
#include "pgmcml/sca/attack.hpp"
#include "pgmcml/util/rng.hpp"
#include "pgmcml/util/table.hpp"

namespace {

using namespace pgmcml;
using cells::CellLibrary;

/// Mounts CPA on PG-MCML with explicit tracer knobs, streaming each trace
/// into the accumulator through one reused row buffer -- the sweep's memory
/// is O(samples), independent of the trace budget.
sca::CpaResult run_cpa(double residual_sigma, double supply_noise_ratio,
                       std::size_t n_traces, std::uint8_t key) {
  const CellLibrary lib = CellLibrary::pgmcml90();
  const synth::MapResult mapped = core::map_reduced_aes(lib);

  power::TraceOptions topt;
  topt.t_start = 0.4e-9;
  topt.dt = 2e-12;
  topt.samples = 500;
  topt.residual_sigma = residual_sigma;
  topt.supply_noise_ratio = supply_noise_ratio;
  topt.seed = 77;
  const power::PowerTracer tracer(mapped.design, lib,
                                  power::default_kernels(), topt);

  // Safe bus-index parsing ("p[3]" -> 3); malformed or out-of-range names
  // throw instead of silently indexing with garbage.
  const auto bus_index = [](const std::string& name, char prefix) -> int {
    if (name.empty() || name[0] != prefix) return -1;
    if (name.size() < 4 || name[1] != '[' || name.back() != ']') {
      throw std::invalid_argument("malformed port name '" + name + "'");
    }
    const std::string digits = name.substr(2, name.size() - 3);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      throw std::invalid_argument("non-numeric index in port '" + name + "'");
    }
    const int idx = std::stoi(digits);
    if (idx >= 8) {
      throw std::out_of_range("port index out of range in '" + name + "'");
    }
    return idx;
  };

  std::vector<netlist::NetId> p_nets(8), k_nets(8);
  netlist::NetId const_net = netlist::kNoNet;
  for (std::size_t i = 0; i < mapped.design.inputs().size(); ++i) {
    const std::string& name = mapped.design.port_name(i, true);
    int idx = bus_index(name, 'p');
    if (idx >= 0) {
      p_nets[idx] = mapped.design.inputs()[i];
      continue;
    }
    idx = bus_index(name, 'k');
    if (idx >= 0) {
      k_nets[idx] = mapped.design.inputs()[i];
      continue;
    }
    const_net = mapped.design.inputs()[i];
  }

  util::Rng rng(13);
  sca::CpaAccumulator acc(sca::LeakageModel::kHammingWeight, topt.samples);
  std::vector<double> row;
  for (std::size_t t = 0; t < n_traces; ++t) {
    const auto plaintext = static_cast<std::uint8_t>(rng.bounded(256));
    netlist::LogicSim sim(mapped.design, &lib);
    std::vector<std::pair<netlist::NetId, bool>> init;
    for (int b = 0; b < 8; ++b) {
      init.emplace_back(k_nets[b], (key >> b) & 1);
      init.emplace_back(p_nets[b], false);
    }
    if (const_net != netlist::kNoNet) init.emplace_back(const_net, false);
    sim.apply_and_settle(init);
    sim.clear_events();
    sim.run_until(0.5e-9);
    std::vector<std::pair<netlist::NetId, bool>> stim;
    for (int b = 0; b < 8; ++b) {
      stim.emplace_back(p_nets[b], (plaintext >> b) & 1);
    }
    sim.apply_and_settle(stim);
    tracer.trace_into(sim.events(), {}, t, row);
    acc.add(plaintext, row);
  }
  return acc.snapshot();
}

void print_security_ablation(pgmcml::bench::Manifest& manifest) {
  const std::uint8_t key = 0x2b;

  util::Table t1("PG-MCML security vs leg-imbalance residual (2000 traces)");
  t1.header({"residual sigma", "key rank", "margin"});
  for (double sigma : {0.002, 0.01, 0.05, 0.2}) {
    const auto r = run_cpa(sigma, 0.0025, 2000, key);
    manifest.metric("residual." + util::Table::num(sigma, 3) + ".key_rank",
                    static_cast<double>(r.key_rank(key)),
                    pgmcml::bench::Better::kNone);
    t1.row({util::Table::num(sigma, 3), std::to_string(r.key_rank(key)),
            util::Table::num(r.margin(key), 4)});
  }
  t1.print();
  std::printf(
      "Reading: at realistic Pelgrom mismatch (sigma <= ~1%%) the residuals "
      "are buried and instance-random;\nat gross imbalance (>= ~20%%) the "
      "output cells' residuals align with the HW model and the key\nfalls "
      "-- the quantitative version of why MCML's DPA resistance depends on "
      "matched pairs and the\nbalanced fat-wire routing the paper's flow "
      "enforces.\n\n");

  util::Table t2("CMOS-style check: noise floor needed to hide the CMOS leak");
  t2.header({"noise sigma [uA]", "key rank (CMOS, 2000 traces)"});
  spice::FlowDiagnostics flow_diag;
  for (double noise : {2e-6, 100e-6, 1e-3, 5e-3}) {
    core::DpaFlowOptions opt;
    opt.num_traces = 2000;
    opt.samples = 500;
    opt.noise_sigma = noise;
    opt.keep_traces = false;  // the sweep only needs the attack statistics
    const auto r = core::run_dpa_flow(CellLibrary::cmos90(), opt);
    flow_diag.merge(r.diagnostics);
    t2.row({util::Table::num(noise * 1e6, 0), std::to_string(r.key_rank)});
  }
  t2.print();

  // Machine-readable acquisition health for the sweep above: retries and
  // skips are deterministic and gate regressions; the raw incident list
  // rides along as a section.
  manifest.metric("acquisition.retries", static_cast<double>(flow_diag.retries),
                  pgmcml::bench::Better::kLower);
  manifest.metric("acquisition.skips", static_cast<double>(flow_diag.skipped),
                  pgmcml::bench::Better::kLower);
  manifest.section(
      "diagnostics",
      pgmcml::obs::json::Value::parse(flow_diag.to_json()));
  manifest.write();
  std::printf("(diagnostics: %s)\n\n",
              flow_diag.clean() ? "clean" : "incidents recorded");
  std::printf(
      "Reading: CPA averages noise away -- only mA-class noise floors "
      "(thousands of times the scope's)\nbury the CMOS leak at this trace "
      "budget, and more traces undo even that.  The structural fix\n"
      "(constant-current logic) is what actually defeats the attack.\n\n");
}

void BM_SecurityTracePoint(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_cpa(0.002, 0.0025, 16, 0x2b));
  }
}
BENCHMARK(BM_SecurityTracePoint)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  pgmcml::bench::Manifest manifest("ablation_security");
  print_security_ablation(manifest);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
