// Security-margin ablation: how robust is the MCML/PG-MCML DPA resistance
// to the physical parameters behind it?  Sweeps
//   * the per-instance leg-imbalance residual (process mismatch),
//   * the supply-noise floor,
//   * the trace budget,
// and reports the CPA key rank -- mapping the boundary where current-mode
// logic *would* start to leak.  (The paper evaluates one point of this
// space; the sweep is this reproduction's extension.)
//
// It also mounts the two non-CPA attack modalities per style -- the
// static-power attack on quiescent holds (awake and gated-off windows) and
// the MLPA multi-bit attack on dynamic traces -- and gates the headline
// result: static power discloses CMOS and MCML but the PG-MCML gated-off
// window starves it.  PGMCML_BENCH_SMOKE=1 shrinks every trace budget to a
// CI-sized run.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "bench_manifest.hpp"
#include "pgmcml/core/dpa_flow.hpp"
#include "pgmcml/core/sbox_unit.hpp"
#include "pgmcml/netlist/logicsim.hpp"
#include "pgmcml/power/kernels.hpp"
#include "pgmcml/sca/accumulator.hpp"
#include "pgmcml/sca/attack.hpp"
#include "pgmcml/util/rng.hpp"
#include "pgmcml/util/table.hpp"

namespace {

using namespace pgmcml;
using cells::CellLibrary;

bool smoke_mode() {
  const char* env = std::getenv("PGMCML_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Mounts CPA on PG-MCML with explicit tracer knobs, streaming each trace
/// into the accumulator through one reused row buffer -- the sweep's memory
/// is O(samples), independent of the trace budget.
sca::CpaResult run_cpa(double residual_sigma, double supply_noise_ratio,
                       std::size_t n_traces, std::uint8_t key) {
  const CellLibrary lib = CellLibrary::pgmcml90();
  const synth::MapResult mapped = core::map_reduced_aes(lib);

  power::TraceOptions topt;
  topt.t_start = 0.4e-9;
  topt.dt = 2e-12;
  topt.samples = 500;
  topt.residual_sigma = residual_sigma;
  topt.supply_noise_ratio = supply_noise_ratio;
  topt.seed = 77;
  const power::PowerTracer tracer(mapped.design, lib,
                                  power::default_kernels(), topt);

  // Safe bus-index parsing ("p[3]" -> 3); malformed or out-of-range names
  // throw instead of silently indexing with garbage.
  const auto bus_index = [](const std::string& name, char prefix) -> int {
    if (name.empty() || name[0] != prefix) return -1;
    if (name.size() < 4 || name[1] != '[' || name.back() != ']') {
      throw std::invalid_argument("malformed port name '" + name + "'");
    }
    const std::string digits = name.substr(2, name.size() - 3);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      throw std::invalid_argument("non-numeric index in port '" + name + "'");
    }
    const int idx = std::stoi(digits);
    if (idx >= 8) {
      throw std::out_of_range("port index out of range in '" + name + "'");
    }
    return idx;
  };

  std::vector<netlist::NetId> p_nets(8), k_nets(8);
  netlist::NetId const_net = netlist::kNoNet;
  for (std::size_t i = 0; i < mapped.design.inputs().size(); ++i) {
    const std::string& name = mapped.design.port_name(i, true);
    int idx = bus_index(name, 'p');
    if (idx >= 0) {
      p_nets[idx] = mapped.design.inputs()[i];
      continue;
    }
    idx = bus_index(name, 'k');
    if (idx >= 0) {
      k_nets[idx] = mapped.design.inputs()[i];
      continue;
    }
    const_net = mapped.design.inputs()[i];
  }

  util::Rng rng(13);
  sca::CpaAccumulator acc(sca::LeakageModel::kHammingWeight, topt.samples);
  std::vector<double> row;
  for (std::size_t t = 0; t < n_traces; ++t) {
    const auto plaintext = static_cast<std::uint8_t>(rng.bounded(256));
    netlist::LogicSim sim(mapped.design, &lib);
    std::vector<std::pair<netlist::NetId, bool>> init;
    for (int b = 0; b < 8; ++b) {
      init.emplace_back(k_nets[b], (key >> b) & 1);
      init.emplace_back(p_nets[b], false);
    }
    if (const_net != netlist::kNoNet) init.emplace_back(const_net, false);
    sim.apply_and_settle(init);
    sim.clear_events();
    sim.run_until(0.5e-9);
    std::vector<std::pair<netlist::NetId, bool>> stim;
    for (int b = 0; b < 8; ++b) {
      stim.emplace_back(p_nets[b], (plaintext >> b) & 1);
    }
    sim.apply_and_settle(stim);
    tracer.trace_into(sim.events(), {}, t, row);
    acc.add(plaintext, row);
  }
  return acc.snapshot();
}

/// The two non-CPA attack modalities, per style.  The static-power attack
/// runs on its own quiescent acquisition (acquisition == kStatic); MLPA
/// rides a dynamic acquisition of the same budget.  MTD 0 = never disclosed.
void print_attack_modalities(pgmcml::bench::Manifest& manifest) {
  const std::uint8_t key = 0x2b;
  const std::size_t budget = smoke_mode() ? 600 : 2000;

  util::Table t("Static-power and MLPA attack modalities (" +
                std::to_string(budget) + " traces/holds per style)");
  t.header({"Style", "static awake rank", "awake MTD", "static asleep rank",
            "asleep MTD", "MLPA rank", "MLPA MTD"});
  for (const CellLibrary& lib : {CellLibrary::cmos90(), CellLibrary::mcml90(),
                                 CellLibrary::pgmcml90()}) {
    const std::string style = to_string(lib.style());

    core::DpaFlowOptions sopt;
    sopt.num_traces = budget;
    sopt.samples = 200;
    sopt.key = key;
    sopt.acquisition = core::AcquisitionMode::kStatic;
    sopt.compute_static = true;
    sopt.compute_mtd = true;
    sopt.keep_traces = false;
    const core::DpaFlowResult sr = core::run_dpa_flow(lib, sopt);
    const int awake_rank = sr.static_awake.key_rank(key);
    const int asleep_rank = sr.static_asleep.key_rank(key);

    core::DpaFlowOptions mopt;
    mopt.num_traces = budget;
    mopt.samples = 300;
    mopt.key = key;
    mopt.compute_mlpa = true;
    mopt.compute_mtd = true;
    mopt.keep_traces = false;
    const core::DpaFlowResult mr = core::run_dpa_flow(lib, mopt);
    const int mlpa_rank = mr.mlpa.key_rank(key);

    const auto mtd_str = [](std::size_t mtd) {
      return mtd > 0 ? std::to_string(mtd) : std::string("-");
    };
    t.row({style, std::to_string(awake_rank), mtd_str(sr.static_awake_mtd),
           std::to_string(asleep_rank), mtd_str(sr.static_asleep_mtd),
           std::to_string(mlpa_rank), mtd_str(mr.mlpa_mtd)});

    using pgmcml::bench::Better;
    manifest.metric("static." + style + ".awake.key_rank",
                    static_cast<double>(awake_rank), Better::kNone);
    manifest.metric("static." + style + ".awake.mtd",
                    static_cast<double>(sr.static_awake_mtd), Better::kNone);
    manifest.metric("static." + style + ".asleep.key_rank",
                    static_cast<double>(asleep_rank), Better::kNone);
    manifest.metric("static." + style + ".asleep.mtd",
                    static_cast<double>(sr.static_asleep_mtd), Better::kNone);
    manifest.metric("mlpa." + style + ".key_rank",
                    static_cast<double>(mlpa_rank), Better::kNone);
    manifest.metric("mlpa." + style + ".mtd",
                    static_cast<double>(mr.mlpa_mtd), Better::kNone);
    // The gated headline verdicts (exact 0/1, compared at full strictness):
    // static power DISCLOSES every style while powered -- including both
    // MCML flavours, whose dynamic CPA resistance does not carry over to
    // leakage -- and the PG-MCML gated-off window STARVES the same attack.
    manifest.metric("static." + style + ".awake_discloses",
                    awake_rank == 0 ? 1.0 : 0.0, Better::kHigher);
    if (lib.style() == cells::LogicStyle::kPgMcml) {
      manifest.metric("static." + style + ".asleep_starved",
                      asleep_rank != 0 && sr.static_asleep_mtd == 0 ? 1.0
                                                                    : 0.0,
                      Better::kHigher);
    }
  }
  t.print();
  std::printf(
      "Reading: the static-power channel (average quiescent current per held "
      "state) defeats BOTH\nCMOS and conventional MCML -- leakage asymmetry "
      "and leg imbalance are state-dependent whenever\nthe cells are powered "
      "-- and PG-MCML's awake window leaks the same way.  Only the gated-off "
      "\nwindow starves the attack: the sleep devices leave a state-"
      "independent floor, which is the\npower-gating argument of the paper "
      "extended to static power.  MLPA is a multi-bit refinement\nof DPA and "
      "tracks its per-style verdicts.\n\n");
}

void print_security_ablation(pgmcml::bench::Manifest& manifest) {
  const std::uint8_t key = 0x2b;
  const std::size_t sweep_traces = smoke_mode() ? 400 : 2000;

  util::Table t1("PG-MCML security vs leg-imbalance residual (" +
                 std::to_string(sweep_traces) + " traces)");
  t1.header({"residual sigma", "key rank", "margin"});
  for (double sigma : {0.002, 0.01, 0.05, 0.2}) {
    const auto r = run_cpa(sigma, 0.0025, sweep_traces, key);
    manifest.metric("residual." + util::Table::num(sigma, 3) + ".key_rank",
                    static_cast<double>(r.key_rank(key)),
                    pgmcml::bench::Better::kNone);
    t1.row({util::Table::num(sigma, 3), std::to_string(r.key_rank(key)),
            util::Table::num(r.margin(key), 4)});
  }
  t1.print();
  std::printf(
      "Reading: at realistic Pelgrom mismatch (sigma <= ~1%%) the residuals "
      "are buried and instance-random;\nat gross imbalance (>= ~20%%) the "
      "output cells' residuals align with the HW model and the key\nfalls "
      "-- the quantitative version of why MCML's DPA resistance depends on "
      "matched pairs and the\nbalanced fat-wire routing the paper's flow "
      "enforces.\n\n");

  util::Table t2("CMOS-style check: noise floor needed to hide the CMOS leak");
  t2.header({"noise sigma [uA]",
             "key rank (CMOS, " + std::to_string(sweep_traces) + " traces)"});
  spice::FlowDiagnostics flow_diag;
  for (double noise : {2e-6, 100e-6, 1e-3, 5e-3}) {
    core::DpaFlowOptions opt;
    opt.num_traces = sweep_traces;
    opt.samples = 500;
    opt.noise_sigma = noise;
    opt.keep_traces = false;  // the sweep only needs the attack statistics
    const auto r = core::run_dpa_flow(CellLibrary::cmos90(), opt);
    flow_diag.merge(r.diagnostics);
    t2.row({util::Table::num(noise * 1e6, 0), std::to_string(r.key_rank)});
  }
  t2.print();

  // Machine-readable acquisition health for the sweep above: retries and
  // skips are deterministic and gate regressions; the raw incident list
  // rides along as a section.
  manifest.metric("acquisition.retries", static_cast<double>(flow_diag.retries),
                  pgmcml::bench::Better::kLower);
  manifest.metric("acquisition.skips", static_cast<double>(flow_diag.skipped),
                  pgmcml::bench::Better::kLower);
  manifest.section(
      "diagnostics",
      pgmcml::obs::json::Value::parse(flow_diag.to_json()));
  manifest.write();
  std::printf("(diagnostics: %s)\n\n",
              flow_diag.clean() ? "clean" : "incidents recorded");
  std::printf(
      "Reading: CPA averages noise away -- only mA-class noise floors "
      "(thousands of times the scope's)\nbury the CMOS leak at this trace "
      "budget, and more traces undo even that.  The structural fix\n"
      "(constant-current logic) is what actually defeats the attack.\n\n");
}

void BM_SecurityTracePoint(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_cpa(0.002, 0.0025, 16, 0x2b));
  }
}
BENCHMARK(BM_SecurityTracePoint)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  pgmcml::bench::Manifest manifest("ablation_security");
  print_attack_modalities(manifest);
  print_security_ablation(manifest);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
