// Reproduces Fig. 3: the buffer design-space exploration over tail current.
//   (a) delay vs Iss for FO1 and FO4 loads -- saturating beyond ~250 uA;
//   (b) power-delay and area-delay products -- area-delay minimum at an
//       interior Iss (the paper picked 50 uA).
// Each point re-solves the bias voltages and re-runs the transistor-level
// transient characterization.
#include <benchmark/benchmark.h>

#include "bench_manifest.hpp"

#include <cstdio>
#include <vector>

#include "pgmcml/mcml/characterize.hpp"
#include "pgmcml/util/table.hpp"
#include "pgmcml/util/units.hpp"

namespace {

using namespace pgmcml;

void print_fig3() {
  const std::vector<double> currents = {10e-6, 20e-6, 35e-6, 50e-6, 75e-6,
                                        100e-6, 150e-6, 250e-6, 400e-6};
  mcml::McmlDesign base;
  util::Table t("Fig. 3 -- MCML buffer bias-current sweep");
  t.header({"Iss [uA]", "Vn [V]", "Vp [V]", "delay FO1", "delay FO4",
            "P = Vdd*Iss", "P*D (FO4)", "A*D (FO4)"});
  // All sweep points run on the parallel-execution layer (PGMCML_THREADS).
  const std::vector<mcml::BufferSweepPoint> sweep =
      mcml::sweep_buffer_bias(base, currents);
  std::vector<mcml::BufferSweepPoint> points;
  for (const auto& pt : sweep) {
    if (!pt.ok) {
      t.row({util::Table::num(pt.iss * 1e6, 0), "-", "-", "(bias failed)", "-",
             "-", "-", "-"});
      continue;
    }
    points.push_back(pt);
    t.row({util::Table::num(pt.iss * 1e6, 0), util::Table::num(pt.vn, 3),
           util::Table::num(pt.vp, 3), util::Table::eng(pt.delay_fo1, "s"),
           util::Table::eng(pt.delay_fo4, "s"), util::Table::eng(pt.power, "W"),
           util::Table::eng(pt.power_delay(), "Ws"),
           util::Table::eng(pt.area_delay(), "m^2*s")});
  }
  t.print();

  // Shape checks the paper highlights.
  if (points.size() >= 3) {
    const auto& first = points.front();
    const auto& last = points.back();
    std::printf(
        "\nDelay speed-up from %.0f uA to %.0f uA: %.2fx (saturating "
        "returns)\n",
        first.iss * 1e6, last.iss * 1e6, first.delay_fo4 / last.delay_fo4);
    std::size_t best = 0;
    for (std::size_t i = 1; i < points.size(); ++i) {
      if (points[i].area_delay() < points[best].area_delay()) best = i;
    }
    std::printf("Area-delay optimum at Iss = %.0f uA (paper: 50 uA)\n\n",
                points[best].iss * 1e6);
  }
}

void BM_BiasSweepPoint(benchmark::State& state) {
  mcml::McmlDesign base;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcml::characterize_buffer_at(base, 50e-6));
  }
}
BENCHMARK(BM_BiasSweepPoint)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  pgmcml::bench::Manifest manifest("fig3_bias_sweep");
  print_fig3();
  manifest.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
