// Logic-style ablation over operating frequency -- the Section 2 landscape
// the paper positions PG-MCML in:
//
//   CMOS:     P ~ E_sw * f + leakage       (cheap at low f, grows with f)
//   DyCML:    P ~ E_op * f                 (dynamic current pulse per cycle)
//   MCML:     P ~ Vdd * Iss                (flat -- wins at multi-GHz, loses
//                                           badly when idle)
//   PG-MCML:  P ~ duty * Vdd * Iss + leak  (follows the workload)
//
// The buffer-level numbers come from the transistor-level characterizations
// (characterize_cell / characterize_dycml_buffer).
#include <benchmark/benchmark.h>

#include "bench_manifest.hpp"

#include <cstdio>

#include "pgmcml/cells/library.hpp"
#include "pgmcml/mcml/characterize.hpp"
#include "pgmcml/mcml/dycml.hpp"
#include "pgmcml/util/table.hpp"

namespace {

using namespace pgmcml;

void print_style_comparison() {
  // Transistor-level per-gate numbers.
  const auto mcml_ch =
      mcml::characterize_cell(mcml::CellKind::kBuf, mcml::McmlDesign{}, 1);
  const auto dycml_ch = mcml::characterize_dycml_buffer();
  const auto cmos = cells::CellLibrary::cmos90().cell(mcml::CellKind::kBuf);

  util::Table props("Per-gate properties (buffer, transistor level)");
  props.header({"style", "delay", "per-op energy", "static/idle"});
  props.row({"CMOS", util::Table::eng(cmos.delay, "s"),
             util::Table::eng(cmos.switch_energy, "J"),
             util::Table::eng(cmos.leakage_power, "W")});
  props.row({"DyCML", util::Table::eng(dycml_ch.delay, "s"),
             util::Table::eng(dycml_ch.energy_per_op, "J"),
             util::Table::eng(dycml_ch.idle_current * 1.2, "W")});
  props.row({"MCML", util::Table::eng(mcml_ch.delay, "s"), "0 (steered)",
             util::Table::eng(mcml_ch.static_power, "W")});
  props.row({"PG-MCML (awake)", util::Table::eng(mcml_ch.delay * 1.02, "s"),
             "0 (steered)", util::Table::eng(mcml_ch.static_power, "W")});
  props.row({"PG-MCML (asleep)", "-", "-",
             util::Table::eng(mcml_ch.sleep_current * 1.2, "W")});
  props.print();

  util::Table t("\nPer-gate average power vs operating frequency (100% activity)");
  t.header({"f [MHz]", "CMOS", "DyCML", "MCML", "crossover note"});
  for (double f : {10e6, 100e6, 400e6, 1e9, 3e9, 10e9, 30e9}) {
    const double p_cmos = cmos.switch_energy * f + cmos.leakage_power;
    const double p_dycml = dycml_ch.energy_per_op * f;
    const double p_mcml = mcml_ch.static_power;
    std::string note;
    if (p_mcml < p_cmos && p_mcml < p_dycml) {
      note = "MCML cheapest (multi-GHz regime)";
    } else if (p_cmos <= p_dycml) {
      note = "CMOS cheapest";
    } else {
      note = "DyCML cheapest";
    }
    t.row({util::Table::num(f / 1e6, 0), util::Table::eng(p_cmos, "W"),
           util::Table::eng(p_dycml, "W"), util::Table::eng(p_mcml, "W"),
           note});
  }
  t.print();
  std::printf(
      "Note: the MCML-beats-CMOS crossover sits in the tens-of-GHz regime "
      "here because the synthetic\nCMOS buffer is small; larger drives / "
      "wire-dominated nodes move it left, which is Section 2's\n"
      "multi-GHz argument.\n");

  util::Table t2(
      "\nPer-gate average power vs duty cycle at 400 MHz (security workload)");
  t2.header({"active duty", "CMOS", "DyCML", "MCML", "PG-MCML"});
  for (double duty : {1.0, 0.1, 0.01, 1e-3, 1e-4}) {
    const double f = 400e6;
    const double p_cmos = cmos.switch_energy * f * duty + cmos.leakage_power;
    const double p_dycml = dycml_ch.energy_per_op * f * duty +
                           dycml_ch.idle_current * 1.2 * (1.0 - duty);
    const double p_mcml = mcml_ch.static_power;
    const double p_pg = mcml_ch.static_power * duty +
                        mcml_ch.sleep_current * 1.2 * (1.0 - duty);
    char label[32];
    std::snprintf(label, sizeof(label), "%g", duty);
    t2.row({label, util::Table::eng(p_cmos, "W"),
            util::Table::eng(p_dycml, "W"), util::Table::eng(p_mcml, "W"),
            util::Table::eng(p_pg, "W")});
  }
  t2.print();
  std::printf(
      "\nDyCML gets the duty-tracking for free but needs the clocked "
      "precharge and its dynamic current\nsource per gate -- the complexity "
      "the paper cites for rejecting it; PG-MCML reaches the same\n"
      "power class with a single sleep transistor and commodity EDA "
      "support.\n\n");
}

void BM_DycmlCharacterization(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcml::characterize_dycml_buffer());
  }
}
BENCHMARK(BM_DycmlCharacterization)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  pgmcml::bench::Manifest manifest("ablation_styles");
  print_style_comparison();
  manifest.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
